package wire

import (
	"bytes"
	"encoding/gob"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// allKinds enumerates every defined message kind, KInvalid included —
// the codec must carry any Kind byte faithfully.
var allKinds = []Kind{
	KInvalid, KWriteBlock, KUpdate, KRead, KMDSCreate, KMDSLookup,
	KMDSHeartbeat, KMDSStat, KParityDelta, KParityLogAdd, KDeltaLogAdd,
	KDataLogReplica, KParixLogAdd, KCordCollect, KBlockFetch, KBlockStore,
	KDrainLogs, KReplicaFetch, KPing, KEpochUpdate, KRepairHint,
	KRepairStatus, KResolveAddr,
}

// fullMsg populates every field of the Msg union with distinctive,
// non-zero values.
func fullMsg(k Kind) *Msg {
	return &Msg{
		Kind:  k,
		From:  -7, // NodeID is signed; the codec must round-trip negatives
		Block: BlockID{Ino: 0xDEADBEEFCAFE, Stripe: 0xA1B2C3D4, Idx: 9},
		Off:   4096,
		Size:  0xFFFF_FFFF,
		Data:  []byte("primary payload"),
		Data2: []byte("secondary payload (parix old data)"),
		Idx:   3,
		K:     4,
		M:     2,
		Loc:   StripeLoc{Nodes: []NodeID{5, 1, -2, 9, 12, 7}, Epoch: 0x1122334455667788},
		Seq:   1<<63 - 1,
		Name:  "/files/trace-0042.dat",
		Flag:  FetchReadThrough | StoreUnlessOverwritten,
		Class: sim.ClassRebuild,
		V:     -12345678901,
	}
}

// TestMsgRoundTripAllKinds: every Kind with every union field populated
// encodes -> decodes identically, and WireSize is exactly the encoded
// length.
func TestMsgRoundTripAllKinds(t *testing.T) {
	for _, k := range allKinds {
		in := fullMsg(k)
		enc := in.AppendTo(nil)
		if got, want := int64(len(enc)), in.WireSize(); got != want {
			t.Fatalf("%v: encoded %d bytes, WireSize says %d", k, got, want)
		}
		var out Msg
		if err := out.Decode(enc); err != nil {
			t.Fatalf("%v: decode: %v", k, err)
		}
		if !reflect.DeepEqual(in, &out) {
			t.Fatalf("%v: round trip mismatch:\n in: %+v\nout: %+v", k, in, &out)
		}
	}
}

// TestMsgRoundTripSparse: zero-valued and partially populated messages
// round-trip too (nil payloads must come back nil, not empty).
func TestMsgRoundTripSparse(t *testing.T) {
	cases := []*Msg{
		{},
		{Kind: KPing},
		{Kind: KMDSCreate, Name: "f"},
		{Kind: KWriteBlock, Data: []byte{0}},
		{Kind: KEpochUpdate, Loc: StripeLoc{Epoch: 3}},
		{Kind: KUpdate, Data: make([]byte, 1<<16), Data2: []byte{}},
	}
	for i, in := range cases {
		if len(in.Data2) == 0 {
			in.Data2 = nil // the codec does not distinguish empty from nil
		}
		if len(in.Data) == 0 {
			in.Data = nil
		}
		enc := in.AppendTo(nil)
		if got, want := int64(len(enc)), in.WireSize(); got != want {
			t.Fatalf("case %d: encoded %d bytes, WireSize says %d", i, got, want)
		}
		var out Msg
		if err := out.Decode(enc); err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(in, &out) {
			t.Fatalf("case %d: round trip mismatch:\n in: %+v\nout: %+v", i, in, &out)
		}
	}
}

func fullResp() *Resp {
	return &Resp{
		Err:  "remote: something structured happened",
		Code: StatusStaleEpoch,
		Data: []byte("reply payload"),
		Ino:  0x0102030405060708,
		Loc:  StripeLoc{Nodes: []NodeID{1, 2, 3}, Epoch: 77},
		Val:  -42,
		Cost: 1234567890,
	}
}

// TestRespRoundTrip mirrors the Msg equivalence test for replies.
func TestRespRoundTrip(t *testing.T) {
	cases := []*Resp{fullResp(), {}, {Err: "x"}, {Data: []byte("d")}, {Loc: StripeLoc{Epoch: 9}}}
	for i, in := range cases {
		enc := in.AppendTo(nil)
		if got, want := int64(len(enc)), in.WireSize(); got != want {
			t.Fatalf("case %d: encoded %d bytes, WireSize says %d", i, got, want)
		}
		var out Resp
		if err := out.Decode(enc); err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(in, &out) {
			t.Fatalf("case %d: round trip mismatch:\n in: %+v\nout: %+v", i, in, &out)
		}
	}
}

// TestAppendToExtends: AppendTo appends after existing bytes rather than
// clobbering them, so framing code can prepend headers in one buffer.
func TestAppendToExtends(t *testing.T) {
	prefix := []byte("header")
	enc := fullMsg(KUpdate).AppendTo(append([]byte(nil), prefix...))
	if !bytes.HasPrefix(enc, prefix) {
		t.Fatal("AppendTo must preserve existing bytes")
	}
	var out Msg
	if err := out.Decode(enc[len(prefix):]); err != nil {
		t.Fatalf("decode after prefix: %v", err)
	}
}

// TestDecodeRejectsBadFormat: any leading byte but FormatVersion — a gob
// stream, a future format — fails with ErrBadFormat.
func TestDecodeRejectsBadFormat(t *testing.T) {
	enc := fullMsg(KPing).AppendTo(nil)
	enc[0] = FormatVersion + 1
	var m Msg
	if err := m.Decode(enc); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("want ErrBadFormat, got %v", err)
	}
	// A gob encoding of the old framing starts with a type descriptor,
	// never 0x01.
	var gobBuf bytes.Buffer
	if err := gob.NewEncoder(&gobBuf).Encode(fullMsg(KPing)); err != nil {
		t.Fatal(err)
	}
	if gobBuf.Bytes()[0] == FormatVersion {
		t.Skip("gob stream happens to start with the format byte")
	}
	if err := m.Decode(gobBuf.Bytes()); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("gob stream: want ErrBadFormat, got %v", err)
	}
	r := fullResp().AppendTo(nil)
	r[0] = 0
	var resp Resp
	if err := resp.Decode(r); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("resp: want ErrBadFormat, got %v", err)
	}
}

// TestDecodeRejectsMalformed: truncations, inflated section lengths, and
// trailing garbage all error out.
func TestDecodeRejectsMalformed(t *testing.T) {
	enc := fullMsg(KUpdate).AppendTo(nil)
	for _, n := range []int{0, 1, msgFixedSize - 1, len(enc) - 1} {
		var m Msg
		if err := m.Decode(enc[:n]); err == nil {
			t.Fatalf("truncation to %d bytes must fail", n)
		}
	}
	var m Msg
	if err := m.Decode(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing byte must fail")
	}
	// Inflate the declared Data length beyond the frame.
	bad := append([]byte(nil), enc...)
	bad[56], bad[57], bad[58], bad[59] = 0xFF, 0xFF, 0xFF, 0xFF
	if err := m.Decode(bad); err == nil {
		t.Fatal("inflated data length must fail")
	}
	rEnc := fullResp().AppendTo(nil)
	for _, n := range []int{0, respFixedSize - 1, len(rEnc) - 1} {
		var r Resp
		if err := r.Decode(rEnc[:n]); err == nil {
			t.Fatalf("resp truncation to %d bytes must fail", n)
		}
	}
}

// TestEncodeAddrMapOversized: a pathological address errors out instead
// of silently vanishing from the map.
func TestEncodeAddrMapOversized(t *testing.T) {
	if _, err := EncodeAddrMap(map[NodeID]string{1: "ok:1", 2: strings.Repeat("x", 0x10000)}); err == nil {
		t.Fatal("oversized address must be an error")
	}
	enc, err := EncodeAddrMap(map[NodeID]string{1: strings.Repeat("a", 0xFFFF)})
	if err != nil {
		t.Fatalf("address at the bound must encode: %v", err)
	}
	out, err := DecodeAddrMap(enc)
	if err != nil || len(out[1]) != 0xFFFF {
		t.Fatalf("bound address round trip: %v, len %d", err, len(out[1]))
	}
}

// FuzzMsgDecode: a malformed message frame must error, never panic, and
// never allocate past the frame it was given.
func FuzzMsgDecode(f *testing.F) {
	f.Add(fullMsg(KUpdate).AppendTo(nil))
	f.Add(fullMsg(KWriteBlock).AppendTo(nil))
	f.Add((&Msg{}).AppendTo(nil))
	f.Add([]byte{})
	f.Add([]byte{FormatVersion})
	f.Add(make([]byte, msgFixedSize))
	trunc := fullMsg(KRead).AppendTo(nil)
	f.Add(trunc[:len(trunc)-3])
	inflated := (&Msg{Kind: KPing}).AppendTo(nil)
	inflated[56] = 0xFF // declared Data length far beyond the frame
	f.Add(inflated)
	f.Fuzz(func(t *testing.T, b []byte) {
		var m Msg
		if err := m.Decode(b); err != nil {
			return
		}
		// A frame that decodes must re-encode to the identical bytes —
		// the layout has exactly one encoding per message.
		if out := m.AppendTo(nil); !bytes.Equal(out, b) {
			t.Fatalf("decode/encode not idempotent:\n in: %x\nout: %x", b, out)
		}
	})
}

// FuzzRespDecode mirrors FuzzMsgDecode for replies.
func FuzzRespDecode(f *testing.F) {
	f.Add(fullResp().AppendTo(nil))
	f.Add((&Resp{}).AppendTo(nil))
	f.Add([]byte{})
	f.Add([]byte{FormatVersion})
	f.Add(make([]byte, respFixedSize))
	inflated := (&Resp{}).AppendTo(nil)
	inflated[4] = 0xFF
	f.Add(inflated)
	f.Fuzz(func(t *testing.T, b []byte) {
		var r Resp
		if err := r.Decode(b); err != nil {
			return
		}
		if out := r.AppendTo(nil); !bytes.Equal(out, b) {
			t.Fatalf("decode/encode not idempotent:\n in: %x\nout: %x", b, out)
		}
	})
}

// FuzzDecodeAddrMap: a malformed address map errors instead of panicking
// or over-allocating.
func FuzzDecodeAddrMap(f *testing.F) {
	good, err := EncodeAddrMap(map[NodeID]string{0: "10.0.0.1:7000", 3: "[::1]:80"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0xFF, 0xFF}) // declares 64 KiB, carries none
	f.Add(good[:len(good)-1])
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeAddrMap(b)
		if err != nil {
			return
		}
		re, err := EncodeAddrMap(m)
		if err != nil {
			t.Fatalf("decoded map failed to re-encode: %v", err)
		}
		// Entries are unordered on the wire only in that later duplicates
		// overwrite earlier ones; a map without duplicates re-encodes to
		// the same byte count.
		if len(re) > len(b) {
			t.Fatalf("re-encoding grew: %d > %d", len(re), len(b))
		}
	})
}

// benchMsg is the acceptance-criteria frame: a 64 KiB KWriteBlock with a
// realistic placement.
func benchMsg() *Msg {
	return &Msg{
		Kind:  KWriteBlock,
		From:  ClientIDBase,
		Block: BlockID{Ino: 42, Stripe: 7, Idx: 2},
		Data:  make([]byte, 64<<10),
		K:     4,
		M:     2,
		Loc:   StripeLoc{Nodes: []NodeID{1, 2, 3, 4, 5, 6}, Epoch: 3},
	}
}

func BenchmarkMsgEncodeBinary(b *testing.B) {
	m := benchMsg()
	buf := m.AppendTo(nil)
	b.SetBytes(m.WireSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = m.AppendTo(buf[:0])
	}
	_ = buf
}

func BenchmarkMsgDecodeBinary(b *testing.B) {
	enc := benchMsg().AppendTo(nil)
	var m Msg
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMsgEncodeGob(b *testing.B) {
	m := benchMsg()
	var buf bytes.Buffer
	b.SetBytes(m.WireSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		// A fresh encoder per frame is what the retired transport did:
		// stream state cannot be reused across independent frames.
		if err := gob.NewEncoder(&buf).Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMsgDecodeGob(b *testing.B) {
	var seed bytes.Buffer
	if err := gob.NewEncoder(&seed).Encode(benchMsg()); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(seed.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var m Msg
		if err := gob.NewDecoder(bytes.NewReader(seed.Bytes())).Decode(&m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRespEncodeBinary(b *testing.B) {
	r := &Resp{Data: make([]byte, 64<<10), Cost: 12345}
	buf := r.AppendTo(nil)
	b.SetBytes(r.WireSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = r.AppendTo(buf[:0])
	}
	_ = buf
}

func BenchmarkRespDecodeBinary(b *testing.B) {
	enc := (&Resp{Data: make([]byte, 64<<10), Cost: 12345}).AppendTo(nil)
	var r Resp
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
