// Package core assembles the paper's primary contribution — the TSUE
// two-stage update method — from its building blocks and documents how
// they fit together. It is the entry point a reader should start from:
//
//   - internal/logpool holds the FIFO log-pool structure (§3.2): fixed
//     16 MiB log units in the EMPTY → RECYCLABLE → RECYCLING → RECYCLED
//     lifecycle, the two-level block/offset index with the page bitmap
//     (§3.3.1), locality merging (Overwrite for data, XOR folding for
//     deltas), the read-cache role of retained units (§3.3.3), and the
//     recycling thread pool with per-block ordering (§3.2.1).
//
//   - internal/update/tsue.go binds three of those pools into the
//     three-layer log (DataLog → DeltaLog → ParityLog, §3.1): the
//     synchronous front end appends to the DataLog and replicates the
//     record; the asynchronous back end recycles data-log extents into
//     the data blocks (one read-modify-write per merged extent),
//     forwards deltas to the first parity OSD's DeltaLog (copy on the
//     second), merges them across blocks per Equation 5, and finally
//     XORs merged parity deltas into the parity blocks.
//
//   - internal/erasure provides the Reed-Solomon mathematics
//     (Equations 1-5); internal/ecfs is the cluster file system the
//     method runs in; internal/bench regenerates the paper's evaluation.
package core

import (
	"repro/internal/update"
)

// Config is the TSUE configuration (unit size, quota, pools per device,
// feature gates O1-O5).
type Config = update.Config

// Strategy is the update-strategy interface every method implements.
type Strategy = update.Strategy

// Env is the OSD-side environment a strategy is bound to.
type Env = update.Env

// DefaultConfig returns the paper's production TSUE configuration:
// 16 MiB units, 4 units per pool, 4 pools per SSD, 2-copy DataLog,
// DeltaLog enabled, all locality optimizations on.
func DefaultConfig() Config { return update.DefaultConfig() }

// New constructs the TSUE strategy bound to env — the object that
// receives client updates for the blocks an OSD hosts and runs the
// two-stage pipeline described in the package documentation.
func New(cfg Config, env Env) (Strategy, error) {
	return update.New("tsue", cfg, env)
}

// NewBaseline constructs one of the comparison methods the paper
// re-implements in the same file system: "fo", "fl", "pl", "plr",
// "parix" or "cord".
func NewBaseline(name string, cfg Config, env Env) (Strategy, error) {
	return update.New(name, cfg, env)
}
