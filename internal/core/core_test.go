package core_test

import (
	"context"
	"testing"

	"repro/internal/blockstore"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/erasure"
	"repro/internal/wire"
)

// soloEnv is a one-node environment: peer calls fail, which is fine for
// exercising construction and local-only paths.
type soloEnv struct {
	store *blockstore.Store
	dev   *device.Device
}

func newSoloEnv() *soloEnv {
	dev := device.New("solo", device.ChameleonSSD())
	return &soloEnv{store: blockstore.New(dev), dev: dev}
}

func (e *soloEnv) ID() wire.NodeID          { return 1 }
func (e *soloEnv) Store() *blockstore.Store { return e.store }
func (e *soloEnv) Dev() *device.Device      { return e.dev }
func (e *soloEnv) Call(_ context.Context, to wire.NodeID, msg *wire.Msg) (*wire.Resp, error) {
	return &wire.Resp{}, nil
}
func (e *soloEnv) Code(k, m int) (*erasure.Code, error) {
	return erasure.New(k, m, erasure.Vandermonde)
}

func TestNewTSUE(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.BlockSize = 4 << 10
	s, err := core.New(cfg, newSoloEnv())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Name() != "tsue" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestNewBaselines(t *testing.T) {
	for _, name := range []string{"fo", "fl", "pl", "plr", "parix", "cord"} {
		cfg := core.DefaultConfig()
		cfg.BlockSize = 4 << 10
		s, err := core.NewBaseline(name, cfg, newSoloEnv())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("name = %q, want %q", s.Name(), name)
		}
		s.Close()
	}
	if _, err := core.NewBaseline("nosuch", core.DefaultConfig(), newSoloEnv()); err == nil {
		t.Fatal("unknown baseline must fail")
	}
}
