package trace

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/ecfs"
	"repro/internal/transport"
	"repro/internal/wire"
)

func TestClassifyError(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want ErrClass
	}{
		{"data-loss", &ecfs.DataLossError{Ino: 1, Stripe: 2, Have: 3, Need: 4}, ErrClassLoss},
		{"data-loss wrapped", fmt.Errorf("op failed: %w", &ecfs.DataLossError{}), ErrClassLoss},
		{"stale sentinel", wire.ErrStaleEpoch, ErrClassStale},
		{"stale via resp", wire.StaleEpochResp(wire.BlockID{}, 1, 2).Error(), ErrClassStale},
		{"node down", transport.ErrNodeDown{Node: 3}, ErrClassUnreachable},
		{"node down wrapped", fmt.Errorf("update: %w", transport.ErrNodeDown{Node: 3}), ErrClassUnreachable},
		// A peer outage one hop away: the responder converts its
		// transport error with wire.ErrorResp and the caller decodes the
		// reply — the class must survive the crossing.
		{"unreachable across wire", wire.ErrorResp(transport.ErrNodeDown{Node: 9}).Error(), ErrClassUnreachable},
		{"canceled", context.Canceled, ErrClassCanceled},
		{"deadline", context.DeadlineExceeded, ErrClassCanceled},
		{"other", fmt.Errorf("disk on fire"), ErrClassOther},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ClassifyError(tc.err); got != tc.want {
				t.Fatalf("ClassifyError(%v) = %q, want %q", tc.err, got, tc.want)
			}
		})
	}
}

// TestReplayErrorAccounting drives a replay against a cluster with a
// failed, unrepaired OSD: failed ops must be counted, split by sentinel
// class, and sum to the aggregate — and every class must be one a fault
// window legitimately produces (no flattening to "other").
func TestReplayErrorAccounting(t *testing.T) {
	c := ecfs.MustNewCluster(testClusterOptions("tsue"))
	defer c.Close()
	r := NewReplayer(c, 2)
	fileSize := int64(512 << 10)
	ino, err := r.Prepare(context.Background(), "vol", fileSize)
	if err != nil {
		t.Fatal(err)
	}
	c.FailOSD(c.OSDs[0].ID())
	tr := AliCloud(fileSize, 400, 11)
	for i := range tr.Ops {
		if tr.Ops[i].Size > 8<<10 {
			tr.Ops[i].Size = 8 << 10
		}
	}
	res, rerr := r.Run(context.Background(), tr, ino)
	if res.Errors == 0 {
		t.Fatal("no ops failed with a node down and unrepaired")
	}
	if rerr == nil {
		t.Fatal("first error must be surfaced alongside the aggregate")
	}
	var sum int64
	for cls, n := range res.ErrorsBy {
		sum += n
		if cls != ErrClassStale && cls != ErrClassUnreachable {
			t.Fatalf("unexpected error class %q (%d errors): first error %v", cls, n, rerr)
		}
	}
	if sum != res.Errors {
		t.Fatalf("ErrorsBy sums to %d, Errors = %d", sum, res.Errors)
	}
	if res.Ops+res.Errors != int64(len(tr.Ops)) {
		t.Fatalf("ops %d + errors %d != trace len %d", res.Ops, res.Errors, len(tr.Ops))
	}
}
