// Package trace provides the block-trace workloads the paper evaluates
// on: synthetic equivalents of the Ali-Cloud trace [22], the Ten-Cloud
// (Tencent CBS) trace [41], and seven MSR Cambridge volumes [9], plus a
// CSV format and a multi-client replayer.
//
// The generators are parameterized to match the statistics the paper
// itself cites (§2.1):
//
//   - Ali-Cloud: 75% of requests are updates; of those 46% are exactly
//     4 KiB and ~60% are <= 16 KiB.
//   - Ten-Cloud: 69% updates; 69% are 4 KiB and 88% <= 16 KiB; locality
//     is much stronger ("over 80% of datasets touch < 5% of their data
//     volume"), modelled with a higher Zipf skew over a smaller hot set.
//   - MSR volumes: >= 90% of writes are updates, 60% < 4 KiB,
//     90% < 16 KiB, with per-volume mixes.
//
// Offsets follow a Zipf distribution over fixed-size extents so repeated
// and adjacent updates occur with realistic probability — the
// spatio-temporal locality TSUE exploits.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// OpKind is the request type.
type OpKind uint8

const (
	// OpUpdate overwrites existing file bytes.
	OpUpdate OpKind = iota
	// OpRead reads file bytes.
	OpRead
)

func (k OpKind) String() string {
	if k == OpUpdate {
		return "U"
	}
	return "R"
}

// Op is one trace record.
type Op struct {
	Kind OpKind
	Off  int64         // file byte offset
	Size int           // bytes
	At   time.Duration // virtual arrival time since replay start
}

// Trace is a replayable request sequence against one logical volume.
type Trace struct {
	Name     string
	FileSize int64 // volume size the offsets fall within
	Ops      []Op
}

// Stats summarizes a trace.
type Stats struct {
	Ops         int
	Updates     int
	Reads       int
	UpdateFrac  float64
	Frac4K      float64 // updates exactly 4 KiB
	FracLE16K   float64 // updates <= 16 KiB
	UpdateBytes int64
	Duration    time.Duration
}

// Stats computes summary statistics.
func (t *Trace) Stats() Stats {
	s := Stats{Ops: len(t.Ops)}
	var n4k, le16k int
	for _, op := range t.Ops {
		if op.Kind == OpUpdate {
			s.Updates++
			s.UpdateBytes += int64(op.Size)
			if op.Size == 4<<10 {
				n4k++
			}
			if op.Size <= 16<<10 {
				le16k++
			}
		} else {
			s.Reads++
		}
		if op.At > s.Duration {
			s.Duration = op.At
		}
	}
	if s.Ops > 0 {
		s.UpdateFrac = float64(s.Updates) / float64(s.Ops)
	}
	if s.Updates > 0 {
		s.Frac4K = float64(n4k) / float64(s.Updates)
		s.FracLE16K = float64(le16k) / float64(s.Updates)
	}
	return s
}

// Params parameterizes a synthetic generator.
type Params struct {
	Name       string
	FileSize   int64
	Ops        int
	UpdateFrac float64 // fraction of requests that are updates
	// SizeDist is a CDF over update sizes: pairs of (cumulative
	// probability, size). Sampled by the first entry whose probability
	// bound exceeds a uniform draw.
	SizeDist []SizePoint
	// ZipfS is the Zipf skew (>1; larger = stronger locality); ZipfHot
	// is the fraction of the volume the hot extent set covers.
	ZipfS   float64
	ZipfHot float64
	// Rate is the aggregate arrival rate (requests/second) used to
	// assign virtual timestamps.
	Rate float64
	Seed int64
}

// SizePoint is one step of a size CDF.
type SizePoint struct {
	P    float64
	Size int
}

// alignGrain is the offset alignment of generated requests (512 B, the
// sector size of the source traces).
const alignGrain = 512

// Generate produces a synthetic trace from params.
func Generate(p Params) *Trace {
	if p.Ops <= 0 || p.FileSize <= 0 {
		return &Trace{Name: p.Name, FileSize: p.FileSize}
	}
	if p.Rate <= 0 {
		p.Rate = 50_000
	}
	rng := rand.New(rand.NewSource(p.Seed))
	// Hot-set extents: offsets are drawn per-extent via Zipf ranks so
	// the same extents are hit repeatedly (temporal locality) and
	// neighboring sectors inside an extent cluster (spatial locality).
	extentSize := int64(64 << 10)
	hotExtents := max64(1, int64(float64(p.FileSize)*p.ZipfHot)/extentSize)
	zipf := rand.NewZipf(rng, p.ZipfS, 1, uint64(hotExtents-1))
	totalExtents := max64(1, p.FileSize/extentSize)
	// A fixed permutation scatters hot extents across the volume.
	perm := rng.Perm(int(totalExtents))

	t := &Trace{Name: p.Name, FileSize: p.FileSize, Ops: make([]Op, 0, p.Ops)}
	interval := time.Duration(float64(time.Second) / p.Rate)
	var at time.Duration
	for i := 0; i < p.Ops; i++ {
		at += interval
		var op Op
		op.At = at
		if rng.Float64() < p.UpdateFrac {
			op.Kind = OpUpdate
		} else {
			op.Kind = OpRead
		}
		op.Size = sampleSize(rng, p.SizeDist)
		// 90/10 split: most requests hit the hot set.
		var extent int64
		if rng.Float64() < 0.9 {
			extent = int64(perm[int(zipf.Uint64())%len(perm)])
		} else {
			extent = rng.Int63n(totalExtents)
		}
		base := extent * extentSize
		span := extentSize - int64(op.Size)
		if span < 1 {
			span = 1
		}
		off := base + (rng.Int63n(span))/alignGrain*alignGrain
		if off+int64(op.Size) > p.FileSize {
			off = p.FileSize - int64(op.Size)
			if off < 0 {
				off, op.Size = 0, int(p.FileSize)
			}
		}
		op.Off = off
		t.Ops = append(t.Ops, op)
	}
	return t
}

func sampleSize(rng *rand.Rand, dist []SizePoint) int {
	if len(dist) == 0 {
		return 4 << 10
	}
	u := rng.Float64()
	for _, sp := range dist {
		if u < sp.P {
			return sp.Size
		}
	}
	return dist[len(dist)-1].Size
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// WriteCSV streams the trace in a simple CSV form:
// kind,offset,size,at_ns — one op per line after a header.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# name=%s file_size=%d\n", t.Name, t.FileSize); err != nil {
		return err
	}
	for _, op := range t.Ops {
		if _, err := fmt.Fprintf(bw, "%s,%d,%d,%d\n", op.Kind, op.Off, op.Size, op.At.Nanoseconds()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	t := &Trace{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			for _, field := range strings.Fields(strings.TrimPrefix(line, "#")) {
				if v, ok := strings.CutPrefix(field, "name="); ok {
					t.Name = v
				}
				if v, ok := strings.CutPrefix(field, "file_size="); ok {
					n, err := strconv.ParseInt(v, 10, 64)
					if err != nil || n < 0 {
						return nil, fmt.Errorf("trace: bad file_size %q", v)
					}
					t.FileSize = n
				}
			}
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("trace: bad line %q", line)
		}
		var op Op
		switch parts[0] {
		case "U":
			op.Kind = OpUpdate
		case "R":
			op.Kind = OpRead
		default:
			return nil, fmt.Errorf("trace: bad op kind %q", parts[0])
		}
		off, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad offset %q: %w", parts[1], err)
		}
		size, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("trace: bad size %q: %w", parts[2], err)
		}
		ns, err := strconv.ParseInt(parts[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad timestamp %q: %w", parts[3], err)
		}
		if off < 0 || size <= 0 || ns < 0 {
			return nil, fmt.Errorf("trace: bad line %q: negative offset/timestamp or non-positive size", line)
		}
		op.Off, op.Size, op.At = off, size, time.Duration(ns)
		t.Ops = append(t.Ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
