package trace

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/ecfs"
	"repro/internal/erasure"
	"repro/internal/netsim"
	"repro/internal/update"
)

// Generator-statistics test parameters. Every workload generator
// targets the §2.1 fractions exactly (they are its UpdateFrac/SizeDist
// inputs), so for a fixed seed the observed fractions are one
// deterministic draw of statOps Bernoulli trials around the target.
// The binomial standard deviation at p=0.5, n=20000 is ~0.35%, so
// statTol = ±4% is more than ten sigma: the checks hold for any seed
// with overwhelming margin and only fail if a generator change moves
// the target itself. The seeds below are pinned anyway so a failure is
// always reproducible bit-for-bit.
const (
	statOps  = 20000
	statSeed = 1
	statTol  = 0.04
)

func TestGeneratorStatistics(t *testing.T) {
	type target struct {
		name string
		gen  func() *Trace
		// §2.1 targets; a frac4K of -1 means the paper pins no
		// exactly-4-KiB fraction for this workload.
		updateFrac, frac4K, fracLE16K float64
	}
	cases := []target{
		{"ali-cloud", func() *Trace { return AliCloud(1<<30, statOps, statSeed) }, 0.75, 0.46, 0.60},
		{"ten-cloud", func() *Trace { return TenCloud(1<<30, statOps, statSeed) }, 0.69, 0.69, 0.88},
	}
	for _, vol := range MSRVolumes {
		p := msrTable[vol]
		cases = append(cases, target{
			"msr-" + vol,
			func() *Trace { tr, _ := MSR(vol, 1<<28, statOps, statSeed); return tr },
			// MSR per-volume update fraction from the volume table; the
			// size CDF puts 90% of updates at <= 16 KiB (§2.1).
			p.updateFrac, -1, 0.90,
		})
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.gen().Stats()
			if s.Ops != statOps {
				t.Fatalf("ops = %d, want %d", s.Ops, statOps)
			}
			check := func(label string, got, want float64) {
				if want < 0 {
					return
				}
				if got < want-statTol || got > want+statTol {
					t.Errorf("%s = %.3f, want %.2f ± %.2f", label, got, want, statTol)
				}
			}
			check("update fraction", s.UpdateFrac, tc.updateFrac)
			check("4K fraction", s.Frac4K, tc.frac4K)
			check("<=16K fraction", s.FracLE16K, tc.fracLE16K)
		})
	}
}

// TestMSRSizeDistribution pins the remaining §2.1 MSR size claim: 60%
// of updates are *under* 4 KiB (the sub-4K tail the Stats summary does
// not report), within the same documented tolerance.
func TestMSRSizeDistribution(t *testing.T) {
	for _, vol := range MSRVolumes {
		tr, _ := MSR(vol, 1<<28, statOps, statSeed)
		var updates, sub4k int
		for _, op := range tr.Ops {
			if op.Kind != OpUpdate {
				continue
			}
			updates++
			if op.Size < 4<<10 {
				sub4k++
			}
		}
		frac := float64(sub4k) / float64(updates)
		if frac < 0.60-statTol || frac > 0.60+statTol {
			t.Errorf("%s: sub-4K update fraction = %.3f, want 0.60 ± %.2f", vol, frac, statTol)
		}
	}
}

// TestTenCloudStrongerLocality verifies the property that drives TSUE's
// Ten-Cloud advantage: updates concentrate on far fewer distinct 64 KiB
// extents than Ali-Cloud's.
func TestTenCloudStrongerLocality(t *testing.T) {
	distinct := func(tr *Trace) int {
		seen := map[int64]bool{}
		for _, op := range tr.Ops {
			if op.Kind == OpUpdate {
				seen[op.Off>>16] = true
			}
		}
		return len(seen)
	}
	ali := distinct(AliCloud(1<<30, 20000, 3))
	ten := distinct(TenCloud(1<<30, 20000, 3))
	if ten >= ali {
		t.Fatalf("ten-cloud should touch fewer extents: ali=%d ten=%d", ali, ten)
	}
}

func TestMSRVolumes(t *testing.T) {
	for _, vol := range MSRVolumes {
		if _, ok := MSR(vol, 1<<28, 100, 4); !ok {
			t.Fatalf("unknown volume %s", vol)
		}
	}
	if _, ok := MSR("nosuch", 1<<20, 10, 1); ok {
		t.Fatal("unknown volume must report !ok")
	}
}

func TestGenerateBounds(t *testing.T) {
	tr := Generate(Params{Name: "x", FileSize: 1 << 20, Ops: 5000, UpdateFrac: 1,
		SizeDist: []SizePoint{{1, 256 << 10}}, ZipfS: 1.3, ZipfHot: 0.5, Seed: 9})
	for i, op := range tr.Ops {
		if op.Off < 0 || op.Off+int64(op.Size) > tr.FileSize {
			t.Fatalf("op %d out of bounds: off=%d size=%d", i, op.Off, op.Size)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := AliCloud(1<<26, 500, 42)
	b := AliCloud(1<<26, 500, 42)
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatal("same seed must give identical traces")
		}
	}
	c := AliCloud(1<<26, 500, 43)
	same := true
	for i := range a.Ops {
		if a.Ops[i] != c.Ops[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestTimestampsMonotonic(t *testing.T) {
	tr := AliCloud(1<<26, 1000, 5)
	for i := 1; i < len(tr.Ops); i++ {
		if tr.Ops[i].At <= tr.Ops[i-1].At {
			t.Fatal("timestamps must be strictly increasing")
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := TenCloud(1<<24, 300, 6)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.FileSize != tr.FileSize || len(got.Ops) != len(tr.Ops) {
		t.Fatalf("header mismatch: %q %d %d", got.Name, got.FileSize, len(got.Ops))
	}
	for i := range tr.Ops {
		if tr.Ops[i] != got.Ops[i] {
			t.Fatalf("op %d mismatch: %+v != %+v", i, tr.Ops[i], got.Ops[i])
		}
	}
}

// TestCSVErrors enumerates malformed-line shapes: each must return an
// error (never panic, never be silently dropped).
func TestCSVErrors(t *testing.T) {
	cases := []struct{ name, input string }{
		{"short line", "U,1,2\n"},
		{"long line", "U,1,2,3,4\n"},
		{"bad kind", "X,1,2,3\n"},
		{"bad offset", "U,a,2,3\n"},
		{"bad size", "U,1,b,3\n"},
		{"bad timestamp", "U,1,2,c\n"},
		{"negative offset", "U,-1,2,3\n"},
		{"zero size", "U,1,0,3\n"},
		{"negative size", "U,1,-2,3\n"},
		{"negative timestamp", "U,1,2,-3\n"},
		{"offset overflow", "U,99999999999999999999,2,3\n"},
		{"negative file size", "# file_size=-1\n"},
		{"bad file size", "# file_size=huge\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCSV(bytes.NewBufferString(tc.input)); err == nil {
				t.Fatalf("input %q accepted, want error", tc.input)
			}
		})
	}
}

func testClusterOptions(method string) ecfs.Options {
	cfg := update.DefaultConfig()
	cfg.UnitSize = 32 << 10
	cfg.MaxUnits = 4
	cfg.Pools = 2
	cfg.Workers = 2
	return ecfs.Options{
		NumOSDs: 8, K: 4, M: 2, BlockSize: 16 << 10, Method: method,
		Device: device.ChameleonSSD(), Net: netsim.Ethernet25G(),
		Kind: erasure.Vandermonde, Strategy: &cfg,
	}
}

func TestReplayAgainstCluster(t *testing.T) {
	c := ecfs.MustNewCluster(testClusterOptions("tsue"))
	defer c.Close()
	r := NewReplayer(c, 4)
	fileSize := int64(512 << 10)
	ino, err := r.Prepare(context.Background(), "vol", fileSize)
	if err != nil {
		t.Fatal(err)
	}
	tr := TenCloud(fileSize, 800, 7)
	// Clamp sizes to the small test volume.
	for i := range tr.Ops {
		if tr.Ops[i].Size > 8<<10 {
			tr.Ops[i].Size = 8 << 10
		}
	}
	res, err := r.Run(context.Background(), tr, ino)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d replay errors", res.Errors)
	}
	if res.Ops != 800 || res.Updates == 0 || res.Reads == 0 {
		t.Fatalf("result wrong: %+v", res)
	}
	if res.AvgLatency <= 0 {
		t.Fatal("no latency recorded")
	}
	iops := r.Throughput(res)
	if iops <= 0 {
		t.Fatal("no throughput derived")
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyStripes(ino, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReplayLatencySamples(t *testing.T) {
	c := ecfs.MustNewCluster(testClusterOptions("fo"))
	defer c.Close()
	r := NewReplayer(c, 2)
	ino, err := r.Prepare(context.Background(), "vol", 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	tr := AliCloud(256<<10, 100, 8)
	for i := range tr.Ops {
		if tr.Ops[i].Size > 4<<10 {
			tr.Ops[i].Size = 4 << 10
		}
	}
	if _, err := r.Run(context.Background(), tr, ino); err != nil {
		t.Fatal(err)
	}
	if r.Latency.Count() != 100 {
		t.Fatalf("latency samples = %d", r.Latency.Count())
	}
}

func TestOpKindString(t *testing.T) {
	if OpUpdate.String() != "U" || OpRead.String() != "R" {
		t.Fatal("op kind strings wrong")
	}
}

func TestStatsDuration(t *testing.T) {
	tr := &Trace{Ops: []Op{{At: time.Second}, {At: 3 * time.Second}}}
	if tr.Stats().Duration != 3*time.Second {
		t.Fatal("duration wrong")
	}
}
