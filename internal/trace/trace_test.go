package trace

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/ecfs"
	"repro/internal/erasure"
	"repro/internal/netsim"
	"repro/internal/update"
)

func TestAliCloudStatistics(t *testing.T) {
	tr := AliCloud(1<<30, 20000, 1)
	s := tr.Stats()
	if s.Ops != 20000 {
		t.Fatalf("ops = %d", s.Ops)
	}
	if s.UpdateFrac < 0.73 || s.UpdateFrac > 0.77 {
		t.Fatalf("ali update fraction = %.3f, want ~0.75", s.UpdateFrac)
	}
	if s.Frac4K < 0.42 || s.Frac4K > 0.50 {
		t.Fatalf("ali 4K fraction = %.3f, want ~0.46", s.Frac4K)
	}
	if s.FracLE16K < 0.56 || s.FracLE16K > 0.64 {
		t.Fatalf("ali <=16K fraction = %.3f, want ~0.60", s.FracLE16K)
	}
}

func TestTenCloudStatistics(t *testing.T) {
	tr := TenCloud(1<<30, 20000, 2)
	s := tr.Stats()
	if s.UpdateFrac < 0.67 || s.UpdateFrac > 0.71 {
		t.Fatalf("ten update fraction = %.3f, want ~0.69", s.UpdateFrac)
	}
	if s.Frac4K < 0.65 || s.Frac4K > 0.73 {
		t.Fatalf("ten 4K fraction = %.3f, want ~0.69", s.Frac4K)
	}
	if s.FracLE16K < 0.84 || s.FracLE16K > 0.92 {
		t.Fatalf("ten <=16K fraction = %.3f, want ~0.88", s.FracLE16K)
	}
}

// TestTenCloudStrongerLocality verifies the property that drives TSUE's
// Ten-Cloud advantage: updates concentrate on far fewer distinct 64 KiB
// extents than Ali-Cloud's.
func TestTenCloudStrongerLocality(t *testing.T) {
	distinct := func(tr *Trace) int {
		seen := map[int64]bool{}
		for _, op := range tr.Ops {
			if op.Kind == OpUpdate {
				seen[op.Off>>16] = true
			}
		}
		return len(seen)
	}
	ali := distinct(AliCloud(1<<30, 20000, 3))
	ten := distinct(TenCloud(1<<30, 20000, 3))
	if ten >= ali {
		t.Fatalf("ten-cloud should touch fewer extents: ali=%d ten=%d", ali, ten)
	}
}

func TestMSRVolumes(t *testing.T) {
	for _, vol := range MSRVolumes {
		tr, ok := MSR(vol, 1<<28, 2000, 4)
		if !ok {
			t.Fatalf("unknown volume %s", vol)
		}
		s := tr.Stats()
		if s.UpdateFrac < 0.7 {
			t.Fatalf("%s: update fraction %.2f too low", vol, s.UpdateFrac)
		}
		if s.Ops != 2000 {
			t.Fatalf("%s: ops = %d", vol, s.Ops)
		}
	}
	if _, ok := MSR("nosuch", 1<<20, 10, 1); ok {
		t.Fatal("unknown volume must report !ok")
	}
}

func TestGenerateBounds(t *testing.T) {
	tr := Generate(Params{Name: "x", FileSize: 1 << 20, Ops: 5000, UpdateFrac: 1,
		SizeDist: []SizePoint{{1, 256 << 10}}, ZipfS: 1.3, ZipfHot: 0.5, Seed: 9})
	for i, op := range tr.Ops {
		if op.Off < 0 || op.Off+int64(op.Size) > tr.FileSize {
			t.Fatalf("op %d out of bounds: off=%d size=%d", i, op.Off, op.Size)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := AliCloud(1<<26, 500, 42)
	b := AliCloud(1<<26, 500, 42)
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatal("same seed must give identical traces")
		}
	}
	c := AliCloud(1<<26, 500, 43)
	same := true
	for i := range a.Ops {
		if a.Ops[i] != c.Ops[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestTimestampsMonotonic(t *testing.T) {
	tr := AliCloud(1<<26, 1000, 5)
	for i := 1; i < len(tr.Ops); i++ {
		if tr.Ops[i].At <= tr.Ops[i-1].At {
			t.Fatal("timestamps must be strictly increasing")
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := TenCloud(1<<24, 300, 6)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.FileSize != tr.FileSize || len(got.Ops) != len(tr.Ops) {
		t.Fatalf("header mismatch: %q %d %d", got.Name, got.FileSize, len(got.Ops))
	}
	for i := range tr.Ops {
		if tr.Ops[i] != got.Ops[i] {
			t.Fatalf("op %d mismatch: %+v != %+v", i, tr.Ops[i], got.Ops[i])
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("U,1,2\n")); err == nil {
		t.Fatal("short line must fail")
	}
	if _, err := ReadCSV(bytes.NewBufferString("X,1,2,3\n")); err == nil {
		t.Fatal("bad kind must fail")
	}
	if _, err := ReadCSV(bytes.NewBufferString("U,a,2,3\n")); err == nil {
		t.Fatal("bad offset must fail")
	}
}

func testClusterOptions(method string) ecfs.Options {
	cfg := update.DefaultConfig()
	cfg.UnitSize = 32 << 10
	cfg.MaxUnits = 4
	cfg.Pools = 2
	cfg.Workers = 2
	return ecfs.Options{
		NumOSDs: 8, K: 4, M: 2, BlockSize: 16 << 10, Method: method,
		Device: device.ChameleonSSD(), Net: netsim.Ethernet25G(),
		Kind: erasure.Vandermonde, Strategy: &cfg,
	}
}

func TestReplayAgainstCluster(t *testing.T) {
	c := ecfs.MustNewCluster(testClusterOptions("tsue"))
	defer c.Close()
	r := NewReplayer(c, 4)
	fileSize := int64(512 << 10)
	ino, err := r.Prepare(context.Background(), "vol", fileSize)
	if err != nil {
		t.Fatal(err)
	}
	tr := TenCloud(fileSize, 800, 7)
	// Clamp sizes to the small test volume.
	for i := range tr.Ops {
		if tr.Ops[i].Size > 8<<10 {
			tr.Ops[i].Size = 8 << 10
		}
	}
	res, err := r.Run(context.Background(), tr, ino)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d replay errors", res.Errors)
	}
	if res.Ops != 800 || res.Updates == 0 || res.Reads == 0 {
		t.Fatalf("result wrong: %+v", res)
	}
	if res.AvgLatency <= 0 {
		t.Fatal("no latency recorded")
	}
	iops := r.Throughput(res)
	if iops <= 0 {
		t.Fatal("no throughput derived")
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyStripes(ino, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReplayLatencySamples(t *testing.T) {
	c := ecfs.MustNewCluster(testClusterOptions("fo"))
	defer c.Close()
	r := NewReplayer(c, 2)
	ino, err := r.Prepare(context.Background(), "vol", 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	tr := AliCloud(256<<10, 100, 8)
	for i := range tr.Ops {
		if tr.Ops[i].Size > 4<<10 {
			tr.Ops[i].Size = 4 << 10
		}
	}
	if _, err := r.Run(context.Background(), tr, ino); err != nil {
		t.Fatal(err)
	}
	if r.Latency.Count() != 100 {
		t.Fatalf("latency samples = %d", r.Latency.Count())
	}
}

func TestOpKindString(t *testing.T) {
	if OpUpdate.String() != "U" || OpRead.String() != "R" {
		t.Fatal("op kind strings wrong")
	}
}

func TestStatsDuration(t *testing.T) {
	tr := &Trace{Ops: []Op{{At: time.Second}, {At: 3 * time.Second}}}
	if tr.Stats().Duration != 3*time.Second {
		t.Fatal("duration wrong")
	}
}
