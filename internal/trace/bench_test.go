package trace

import "testing"

// BenchmarkGenerateTenCloud measures synthetic trace generation.
func BenchmarkGenerateTenCloud(b *testing.B) {
	for i := 0; i < b.N; i++ {
		TenCloud(1<<30, 10000, int64(i))
	}
}
