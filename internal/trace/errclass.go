package trace

import (
	"context"
	"errors"

	"repro/internal/ecfs"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ErrClass buckets a replay error by the root-level sentinel it wraps,
// so soak assertions can tolerate transient classes (a node mid-rebind,
// an unreachable OSD between failure and repair) while failing hard on
// data loss.
type ErrClass string

// Error classes, from most to least severe. ErrClassLoss is the only
// class a soak must never observe: recovery could not reassemble K
// shards of an acknowledged stripe.
const (
	ErrClassLoss        ErrClass = "data-loss"
	ErrClassStale       ErrClass = "stale-epoch"
	ErrClassUnreachable ErrClass = "unreachable"
	ErrClassCanceled    ErrClass = "canceled"
	ErrClassOther       ErrClass = "other"
)

// TransientClasses are the classes a soak under fault injection may
// legitimately observe while a fault is in flight — the client's
// internal retries are bounded, so a long enough outage surfaces them.
var TransientClasses = []ErrClass{ErrClassStale, ErrClassUnreachable}

// ClassifyError maps an error to its ErrClass by unwrapping to the
// root-level sentinels (wire.ErrStaleEpoch, wire.ErrNotFound,
// transport.ErrNodeUnreachable, *ecfs.DataLossError, context
// cancellation). A nil error has no class; callers should not ask.
func ClassifyError(err error) ErrClass {
	var loss *ecfs.DataLossError
	switch {
	case errors.As(err, &loss):
		return ErrClassLoss
	case errors.Is(err, wire.ErrStaleEpoch):
		return ErrClassStale
	case errors.Is(err, transport.ErrNodeUnreachable), errors.Is(err, wire.ErrUnreachable):
		// Direct transport failures and remote ones re-classified across a
		// hop by wire.ErrorResp (a fanout peer down mid-update) both land
		// here.
		return ErrClassUnreachable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return ErrClassCanceled
	default:
		return ErrClassOther
	}
}
