package trace

import (
	"bytes"
	"testing"
)

// FuzzParseCSV feeds arbitrary bytes to the trace parser. Two
// properties must hold: ReadCSV never panics (malformed input returns
// an error), and any input it accepts survives a WriteCSV/ReadCSV
// round trip with identical ops and file size. The trace name is
// excluded from the round-trip check: the header is whitespace-
// tokenized, so a fuzzed name containing spaces legally truncates.
func FuzzParseCSV(f *testing.F) {
	f.Add([]byte("# name=vol file_size=1048576\nU,0,4096,1000\nR,4096,512,2000\n"))
	f.Add([]byte("U,-1,4096,1000\n"))
	f.Add([]byte("# file_size=18446744073709551616\n"))
	f.Add([]byte("U,0,0,0\nX,,,\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV of accepted trace: %v", err)
		}
		rt, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("reparse of written trace: %v", err)
		}
		if rt.FileSize != tr.FileSize {
			t.Fatalf("file size changed across round trip: %d != %d", rt.FileSize, tr.FileSize)
		}
		if len(rt.Ops) != len(tr.Ops) {
			t.Fatalf("op count changed across round trip: %d != %d", len(rt.Ops), len(tr.Ops))
		}
		for i := range tr.Ops {
			if rt.Ops[i] != tr.Ops[i] {
				t.Fatalf("op %d changed across round trip: %+v != %+v", i, rt.Ops[i], tr.Ops[i])
			}
		}
	})
}
