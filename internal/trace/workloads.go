package trace

// AliCloud returns a synthetic trace matching the Ali-Cloud block trace
// statistics the paper cites (§2.1): 75% updates, 46% of updates exactly
// 4 KiB, ~60% <= 16 KiB, with moderate spatial-temporal locality.
func AliCloud(fileSize int64, ops int, seed int64) *Trace {
	return Generate(Params{
		Name:       "ali-cloud",
		FileSize:   fileSize,
		Ops:        ops,
		UpdateFrac: 0.75,
		SizeDist: []SizePoint{
			{0.46, 4 << 10},  // 46% exactly 4 KiB
			{0.54, 8 << 10},  // +8% -> 54% <= 8 KiB
			{0.60, 16 << 10}, // 60% <= 16 KiB
			{0.78, 64 << 10},
			{0.92, 128 << 10},
			{1.00, 256 << 10},
		},
		ZipfS:   1.2,
		ZipfHot: 0.20, // hot set covers 20% of the volume
		Rate:    60_000,
		Seed:    seed,
	})
}

// TenCloud returns a synthetic trace matching the Tencent CBS trace
// statistics (§2.1): 69% updates, 69% of updates 4 KiB, 88% <= 16 KiB,
// and the much stronger locality the paper reports ("over 80% of
// datasets processed less than 5% of their total data volume") — which
// is why TSUE's advantage is larger on Ten-Cloud.
func TenCloud(fileSize int64, ops int, seed int64) *Trace {
	return Generate(Params{
		Name:       "ten-cloud",
		FileSize:   fileSize,
		Ops:        ops,
		UpdateFrac: 0.69,
		SizeDist: []SizePoint{
			{0.69, 4 << 10}, // 69% exactly 4 KiB
			{0.80, 8 << 10},
			{0.88, 16 << 10}, // 88% <= 16 KiB
			{0.95, 64 << 10},
			{1.00, 128 << 10},
		},
		ZipfS:   1.6,
		ZipfHot: 0.05, // hot set covers only 5% of the volume
		Rate:    60_000,
		Seed:    seed,
	})
}

// MSRVolumes are the seven MSR Cambridge volumes of Fig. 8, with
// per-volume update fractions and skew reflecting the published
// per-volume analysis (write-dominated server volumes like src and proj
// update harder and hotter than user-directory volumes).
var MSRVolumes = []string{"src10", "src22", "proj2", "prn1", "hm0", "usr0", "mds0"}

type msrParams struct {
	updateFrac float64
	zipfS      float64
	zipfHot    float64
}

var msrTable = map[string]msrParams{
	"src10": {updateFrac: 0.92, zipfS: 1.5, zipfHot: 0.06},
	"src22": {updateFrac: 0.90, zipfS: 1.4, zipfHot: 0.08},
	"proj2": {updateFrac: 0.88, zipfS: 1.3, zipfHot: 0.10},
	"prn1":  {updateFrac: 0.85, zipfS: 1.3, zipfHot: 0.12},
	"hm0":   {updateFrac: 0.90, zipfS: 1.4, zipfHot: 0.08},
	"usr0":  {updateFrac: 0.80, zipfS: 1.2, zipfHot: 0.15},
	"mds0":  {updateFrac: 0.88, zipfS: 1.35, zipfHot: 0.10},
}

// MSR returns a synthetic trace for one of the MSR Cambridge volumes:
// ~90% of writes are updates, 60% of updates < 4 KiB and 90% < 16 KiB
// (§2.1), with volume-specific update fraction and locality.
func MSR(volume string, fileSize int64, ops int, seed int64) (*Trace, bool) {
	p, ok := msrTable[volume]
	if !ok {
		return nil, false
	}
	return generateMSR(volume, fileSize, ops, seed, p), true
}

func generateMSR(volume string, fileSize int64, ops int, seed int64, p msrParams) *Trace {
	return Generate(Params{
		Name:       "msr-" + volume,
		FileSize:   fileSize,
		Ops:        ops,
		UpdateFrac: p.updateFrac,
		SizeDist: []SizePoint{
			{0.35, 512},     // sub-4K tail
			{0.60, 2 << 10}, // 60% < 4 KiB
			{0.75, 4 << 10},
			{0.90, 8 << 10}, // 90% < 16 KiB
			{0.97, 32 << 10},
			{1.00, 64 << 10},
		},
		ZipfS:   p.zipfS,
		ZipfHot: p.zipfHot,
		Rate:    20_000, // HDD-era arrival rates
		Seed:    seed,
	})
}
