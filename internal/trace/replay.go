package trace

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/ecfs"
	"repro/internal/sim"
)

// ReplayResult aggregates one replay run.
type ReplayResult struct {
	Ops        int64
	Updates    int64
	Reads      int64
	Errors     int64
	AvgLatency time.Duration
	MaxLatency time.Duration
	// TotalLatency is the summed synchronous latency across requests.
	TotalLatency time.Duration
	// ErrorsBy splits Errors by sentinel class (see ClassifyError), so a
	// soak can tolerate transient classes while failing hard on
	// ErrClassLoss. Nil when no op errored.
	ErrorsBy map[ErrClass]int64
}

// OpResult carries one executed operation's outcome through the
// replayer's hooks.
type OpResult struct {
	// Index is the op's position in the trace.
	Index int
	Op    Op
	Lat   time.Duration
	Err   error
	// Data is the payload a successful OpRead returned. It is only valid
	// for the duration of the hook callbacks; the replayer may reuse the
	// backing array afterwards.
	Data []byte
}

// Replayer drives a trace against a cluster with a client population,
// recording per-request synchronous latency.
type Replayer struct {
	Cluster *ecfs.Cluster
	Clients int
	// Latency collects per-request sync latencies.
	Latency sim.LatencyRecorder

	// Around, if set, wraps every operation's execution: it receives the
	// op and an execution thunk, must invoke the thunk exactly once, and
	// returns its result (usually unchanged). The scenario harness uses
	// it to bracket ops with shadow-state range locks. Called
	// concurrently from the replay clients.
	Around func(op Op, do func() OpResult) OpResult
	// OnResult, if set, observes every operation's outcome (after
	// Around). Called concurrently from the replay clients.
	OnResult func(res OpResult)

	randomPayload bool
	perOpPayload  bool
	payloadSeed   int64
}

// RandomPayload switches update payloads from the default repeating
// pattern to incompressible random bytes (compression experiments).
func (r *Replayer) RandomPayload(seed int64) {
	r.randomPayload = true
	r.perOpPayload = false
	r.payloadSeed = seed
}

// PerOpPayload makes every update's payload a deterministic function of
// (seed, offset, size) instead of one shared pattern — see Payload. A
// content verifier that knows the seed can then reconstruct exactly
// what any acknowledged update wrote, which is what makes the scenario
// harness's no-lost-acknowledged-write check byte-exact.
func (r *Replayer) PerOpPayload(seed int64) {
	r.perOpPayload = true
	r.randomPayload = false
	r.payloadSeed = seed
}

// Payload fills dst with the deterministic per-op update payload for op
// under seed — the bytes a PerOpPayload replayer writes for that op.
// Two ops with different offsets or sizes get different contents, so a
// stale or lost update cannot masquerade as the current one.
func Payload(seed int64, op Op, dst []byte) {
	// splitmix64 over a per-op state: cheap, stateless, well mixed.
	x := uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(op.Off)<<1 ^ uint64(op.Size)<<40 ^ 0xbf58476d1ce4e5b9
	for i := 0; i < len(dst); i += 8 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		for j := 0; j < 8 && i+j < len(dst); j++ {
			dst[i+j] = byte(z >> (8 * j))
		}
	}
}

// NewReplayer builds a replayer with the given concurrent client count.
func NewReplayer(c *ecfs.Cluster, clients int) *Replayer {
	if clients < 1 {
		clients = 1
	}
	return &Replayer{Cluster: c, Clients: clients}
}

// Prepare creates and prepopulates the backing file so every trace op
// targets written stripes, and returns the ino. Content is a fixed
// pattern (cheap, deterministic); trace payloads overwrite it. A
// cancelled ctx stops at a stripe boundary.
func (r *Replayer) Prepare(ctx context.Context, name string, fileSize int64) (uint64, error) {
	cli := r.Cluster.NewClient()
	ino, err := cli.CreateContext(ctx, name)
	if err != nil {
		return 0, err
	}
	span := int64(cli.StripeSpan())
	stripes := (fileSize + span - 1) / span
	chunk := PrepareChunk(int(span))
	for s := int64(0); s < stripes; s++ {
		if _, err := cli.WriteStripeContext(ctx, ino, uint32(s), chunk); err != nil {
			return 0, err
		}
	}
	return ino, nil
}

// PrepareChunk returns the fixed per-stripe pattern Prepare writes, so
// content verifiers can reconstruct the initial file image.
func PrepareChunk(span int) []byte {
	chunk := make([]byte, span)
	for i := range chunk {
		chunk[i] = byte(i * 31)
	}
	return chunk
}

// Run replays the trace: ops are dealt round-robin to Clients concurrent
// clients, preserving per-client order. Returns aggregate results. The
// context is checked before every request, so a cancelled ctx aborts an
// in-flight replay (and thereby an in-flight experiment) within one
// operation. An op error does not stop the replay — it is counted
// (ReplayResult.Errors, split by class in ErrorsBy) and the first one
// is returned alongside the aggregate result, so callers tolerant of
// transient fault-window errors can inspect ErrorsBy instead.
func (r *Replayer) Run(ctx context.Context, t *Trace, ino uint64) (*ReplayResult, error) {
	if len(t.Ops) == 0 {
		return &ReplayResult{}, nil
	}
	res := &ReplayResult{}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		userErr error
	)
	payload := make([]byte, maxOpSize(t))
	if r.randomPayload {
		rand.New(rand.NewSource(r.payloadSeed)).Read(payload)
	} else {
		for i := range payload {
			payload[i] = byte(i*131 + 7)
		}
	}
	for ci := 0; ci < r.Clients; ci++ {
		cli := r.Cluster.NewClient()
		wg.Add(1)
		go func(ci int, cli *ecfs.Client) {
			defer wg.Done()
			var nOps, nUpd, nRead, nErr int64
			var total, maxL time.Duration
			var errsBy map[ErrClass]int64
			var scratch []byte
			if r.perOpPayload {
				scratch = make([]byte, maxOpSize(t))
			}
			for i := ci; i < len(t.Ops); i += r.Clients {
				if ctx.Err() != nil {
					break
				}
				op := t.Ops[i]
				exec := func() OpResult {
					out := OpResult{Index: i, Op: op}
					switch op.Kind {
					case OpUpdate:
						data := payload[:op.Size]
						if r.perOpPayload {
							data = scratch[:op.Size]
							Payload(r.payloadSeed, op, data)
						}
						out.Lat, out.Err = cli.UpdateContext(ctx, ino, op.Off, data, op.At)
					case OpRead:
						out.Data, out.Lat, out.Err = cli.ReadContext(ctx, ino, op.Off, op.Size)
					}
					return out
				}
				var out OpResult
				if r.Around != nil {
					out = r.Around(op, exec)
				} else {
					out = exec()
				}
				if r.OnResult != nil {
					r.OnResult(out)
				}
				if out.Err != nil {
					nErr++
					if errsBy == nil {
						errsBy = make(map[ErrClass]int64)
					}
					errsBy[ClassifyError(out.Err)]++
					mu.Lock()
					if userErr == nil {
						userErr = fmt.Errorf("trace: op %d (%v off=%d size=%d): %w", i, op.Kind, op.Off, op.Size, out.Err)
					}
					mu.Unlock()
					continue
				}
				nOps++
				if op.Kind == OpUpdate {
					nUpd++
				} else {
					nRead++
				}
				total += out.Lat
				if out.Lat > maxL {
					maxL = out.Lat
				}
				r.Latency.Observe(out.Lat)
			}
			mu.Lock()
			res.Ops += nOps
			res.Updates += nUpd
			res.Reads += nRead
			res.Errors += nErr
			res.TotalLatency += total
			if maxL > res.MaxLatency {
				res.MaxLatency = maxL
			}
			for cls, n := range errsBy {
				if res.ErrorsBy == nil {
					res.ErrorsBy = make(map[ErrClass]int64)
				}
				res.ErrorsBy[cls] += n
			}
			mu.Unlock()
		}(ci, cli)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil && userErr == nil {
		userErr = err
	}
	if res.Ops > 0 {
		res.AvgLatency = res.TotalLatency / time.Duration(res.Ops)
	}
	return res, userErr
}

// Throughput derives the aggregate IOPS of a completed replay using the
// bottleneck model over the cluster's resources.
func (r *Replayer) Throughput(res *ReplayResult) float64 {
	return sim.Throughput(res.Ops, r.Clients, res.AvgLatency, r.Cluster.Resources())
}

func maxOpSize(t *Trace) int {
	m := 1
	for _, op := range t.Ops {
		if op.Size > m {
			m = op.Size
		}
	}
	return m
}
