package trace

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/ecfs"
	"repro/internal/sim"
)

// ReplayResult aggregates one replay run.
type ReplayResult struct {
	Ops        int64
	Updates    int64
	Reads      int64
	Errors     int64
	AvgLatency time.Duration
	MaxLatency time.Duration
	// TotalLatency is the summed synchronous latency across requests.
	TotalLatency time.Duration
}

// Replayer drives a trace against a cluster with a client population,
// recording per-request synchronous latency.
type Replayer struct {
	Cluster *ecfs.Cluster
	Clients int
	// Latency collects per-request sync latencies.
	Latency sim.LatencyRecorder

	randomPayload bool
	payloadSeed   int64
}

// RandomPayload switches update payloads from the default repeating
// pattern to incompressible random bytes (compression experiments).
func (r *Replayer) RandomPayload(seed int64) {
	r.randomPayload = true
	r.payloadSeed = seed
}

// NewReplayer builds a replayer with the given concurrent client count.
func NewReplayer(c *ecfs.Cluster, clients int) *Replayer {
	if clients < 1 {
		clients = 1
	}
	return &Replayer{Cluster: c, Clients: clients}
}

// Prepare creates and prepopulates the backing file so every trace op
// targets written stripes, and returns the ino. Content is a fixed
// pattern (cheap, deterministic); trace payloads overwrite it. A
// cancelled ctx stops at a stripe boundary.
func (r *Replayer) Prepare(ctx context.Context, name string, fileSize int64) (uint64, error) {
	cli := r.Cluster.NewClient()
	ino, err := cli.CreateContext(ctx, name)
	if err != nil {
		return 0, err
	}
	span := int64(cli.StripeSpan())
	stripes := (fileSize + span - 1) / span
	chunk := make([]byte, span)
	for i := range chunk {
		chunk[i] = byte(i * 31)
	}
	for s := int64(0); s < stripes; s++ {
		if _, err := cli.WriteStripeContext(ctx, ino, uint32(s), chunk); err != nil {
			return 0, err
		}
	}
	return ino, nil
}

// Run replays the trace: ops are dealt round-robin to Clients concurrent
// clients, preserving per-client order. Returns aggregate results. The
// context is checked before every request, so a cancelled ctx aborts an
// in-flight replay (and thereby an in-flight experiment) within one
// operation.
func (r *Replayer) Run(ctx context.Context, t *Trace, ino uint64) (*ReplayResult, error) {
	if len(t.Ops) == 0 {
		return &ReplayResult{}, nil
	}
	res := &ReplayResult{}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		userErr error
	)
	payload := make([]byte, maxOpSize(t))
	if r.randomPayload {
		rand.New(rand.NewSource(r.payloadSeed)).Read(payload)
	} else {
		for i := range payload {
			payload[i] = byte(i*131 + 7)
		}
	}
	for ci := 0; ci < r.Clients; ci++ {
		cli := r.Cluster.NewClient()
		wg.Add(1)
		go func(ci int, cli *ecfs.Client) {
			defer wg.Done()
			var nOps, nUpd, nRead, nErr int64
			var total, maxL time.Duration
			for i := ci; i < len(t.Ops); i += r.Clients {
				if ctx.Err() != nil {
					break
				}
				op := t.Ops[i]
				var (
					lat time.Duration
					err error
				)
				switch op.Kind {
				case OpUpdate:
					lat, err = cli.UpdateContext(ctx, ino, op.Off, payload[:op.Size], op.At)
				case OpRead:
					_, lat, err = cli.ReadContext(ctx, ino, op.Off, op.Size)
				}
				if err != nil {
					nErr++
					mu.Lock()
					if userErr == nil {
						userErr = fmt.Errorf("trace: op %d (%v off=%d size=%d): %w", i, op.Kind, op.Off, op.Size, err)
					}
					mu.Unlock()
					continue
				}
				nOps++
				if op.Kind == OpUpdate {
					nUpd++
				} else {
					nRead++
				}
				total += lat
				if lat > maxL {
					maxL = lat
				}
				r.Latency.Observe(lat)
			}
			mu.Lock()
			res.Ops += nOps
			res.Updates += nUpd
			res.Reads += nRead
			res.Errors += nErr
			res.TotalLatency += total
			if maxL > res.MaxLatency {
				res.MaxLatency = maxL
			}
			mu.Unlock()
		}(ci, cli)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil && userErr == nil {
		userErr = err
	}
	if res.Ops > 0 {
		res.AvgLatency = res.TotalLatency / time.Duration(res.Ops)
	}
	return res, userErr
}

// Throughput derives the aggregate IOPS of a completed replay using the
// bottleneck model over the cluster's resources.
func (r *Replayer) Throughput(res *ReplayResult) float64 {
	return sim.Throughput(res.Ops, r.Clients, res.AvgLatency, r.Cluster.Resources())
}

func maxOpSize(t *Trace) int {
	m := 1
	for _, op := range t.Ops {
		if op.Size > m {
			m = op.Size
		}
	}
	return m
}
