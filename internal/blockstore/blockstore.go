// Package blockstore keeps the real contents of the blocks an OSD hosts.
//
// Contents live in memory by default (the substitute for the testbed's
// SSD/HDD data partitions) or, when the OSD is opened with a data
// directory, in the durable page/WAL engine of internal/store — the
// same API either way, so strategies never know which backend runs.
// Every access is priced through the OSD's device model, so
// read/write/overwrite workload counters in the paper's Table 1 fall
// out of actually executing the update algorithms; with the durable
// backend the priced charges correspond to real file I/O.
package blockstore

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/wire"
)

// Store is the per-OSD block container. Safe for concurrent use; it also
// exposes per-block mutexes so strategies can make read-modify-write
// sequences atomic.
type Store struct {
	dev *device.Device
	eng *store.Engine // nil: in-memory backend

	mu     sync.RWMutex
	blocks map[wire.BlockID]*block
}

// block holds in-memory contents, or (durable backend) only the
// per-block mutex — the bytes then live in the engine.
type block struct {
	mu   sync.Mutex
	data []byte
}

// New creates an in-memory store charging the given device.
func New(dev *device.Device) *Store {
	return &Store{dev: dev, blocks: make(map[wire.BlockID]*block)}
}

// NewDurable creates a store backed by the persistent engine: contents
// survive process crashes, device charges stay identical.
func NewDurable(dev *device.Device, eng *store.Engine) *Store {
	return &Store{dev: dev, eng: eng, blocks: make(map[wire.BlockID]*block)}
}

// Device returns the backing device model.
func (s *Store) Device() *device.Device { return s.dev }

// Engine returns the durable engine, or nil for the in-memory backend.
func (s *Store) Engine() *store.Engine { return s.eng }

func (s *Store) get(id wire.BlockID) *block {
	s.mu.RLock()
	b := s.blocks[id]
	s.mu.RUnlock()
	return b
}

func (s *Store) getOrCreate(id wire.BlockID, size int) *block {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.blocks[id]
	if b == nil {
		b = &block{}
		if s.eng != nil {
			s.eng.Ensure(id, uint32(size))
		} else {
			b.data = make([]byte, size)
		}
		s.blocks[id] = b
	}
	return b
}

// lockTable returns the mutex holder for an engine-backed block that
// already exists durably (e.g. recovered from a previous run).
func (s *Store) lockTable(id wire.BlockID) *block {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.blocks[id]
	if b == nil {
		b = &block{}
		s.blocks[id] = b
	}
	return b
}

// Lock acquires the block's mutex (creating a zero-filled block of the
// given size if absent) and returns the unlock function. Strategies wrap
// read-modify-write cycles with it.
func (s *Store) Lock(id wire.BlockID, size int) func() {
	b := s.getOrCreate(id, size)
	b.mu.Lock()
	return b.mu.Unlock
}

// WriteFull stores a whole block. seq selects sequential pricing (the
// initial stripe write); a rewrite of an existing block is an overwrite.
func (s *Store) WriteFull(id wire.BlockID, data []byte, seq bool) time.Duration {
	return s.WriteFullClass(sim.ClassOther, id, data, seq)
}

// WriteFullClass is WriteFull with the device charge traffic-classified.
func (s *Store) WriteFullClass(class sim.Class, id wire.BlockID, data []byte, seq bool) time.Duration {
	if s.eng != nil {
		existed := s.eng.Has(id)
		b := s.lockTable(id)
		b.mu.Lock()
		s.eng.WriteFull(id, data)
		b.mu.Unlock()
		return s.dev.WriteClass(class, int64(len(data)), !seq, existed)
	}
	s.mu.Lock()
	b := s.blocks[id]
	existed := b != nil
	if b == nil {
		b = &block{}
		s.blocks[id] = b
	}
	s.mu.Unlock()
	b.mu.Lock()
	b.data = append(b.data[:0], data...)
	b.mu.Unlock()
	return s.dev.WriteClass(class, int64(len(data)), !seq, existed)
}

// ReadRange reads [off, off+size) of a block. random selects the random
// access cost. Reading an absent block returns an error; reading beyond
// the block's size returns an error.
func (s *Store) ReadRange(id wire.BlockID, off uint32, size int, random bool) ([]byte, time.Duration, error) {
	return s.ReadRangeClass(sim.ClassOther, id, off, size, random)
}

// ReadRangeClass is ReadRange with the device charge traffic-classified.
func (s *Store) ReadRangeClass(class sim.Class, id wire.BlockID, off uint32, size int, random bool) ([]byte, time.Duration, error) {
	if s.eng != nil {
		out, err := s.eng.ReadRange(id, off, size)
		if err != nil {
			return nil, 0, err
		}
		return out, s.dev.ReadClass(class, int64(size), random), nil
	}
	b := s.get(id)
	if b == nil {
		return nil, 0, fmt.Errorf("blockstore: %v not found", id)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if int(off)+size > len(b.data) {
		return nil, 0, fmt.Errorf("blockstore: read [%d,%d) beyond %v of %d bytes", off, int(off)+size, id, len(b.data))
	}
	out := append([]byte(nil), b.data[off:int(off)+size]...)
	cost := s.dev.ReadClass(class, int64(size), random)
	return out, cost, nil
}

// ReadRangeNoLock is ReadRange for callers already holding Lock(id).
func (s *Store) ReadRangeNoLock(id wire.BlockID, off uint32, size int, random bool) ([]byte, time.Duration, error) {
	return s.ReadRangeNoLockClass(sim.ClassOther, id, off, size, random)
}

// ReadRangeNoLockClass is ReadRangeNoLock with the device charge
// traffic-classified.
func (s *Store) ReadRangeNoLockClass(class sim.Class, id wire.BlockID, off uint32, size int, random bool) ([]byte, time.Duration, error) {
	if s.eng != nil {
		out, err := s.eng.ReadRange(id, off, size)
		if err != nil {
			return nil, 0, err
		}
		return out, s.dev.ReadClass(class, int64(size), random), nil
	}
	b := s.get(id)
	if b == nil {
		return nil, 0, fmt.Errorf("blockstore: %v not found", id)
	}
	if int(off)+size > len(b.data) {
		return nil, 0, fmt.Errorf("blockstore: read [%d,%d) beyond %v of %d bytes", off, int(off)+size, id, len(b.data))
	}
	out := append([]byte(nil), b.data[off:int(off)+size]...)
	cost := s.dev.ReadClass(class, int64(size), random)
	return out, cost, nil
}

// WriteRange overwrites [off, off+len(data)) in place — always an
// overwrite for wear accounting. The block is created zero-filled at
// blockSize if absent (an update may precede the full write in replays).
func (s *Store) WriteRange(id wire.BlockID, off uint32, data []byte, random bool, blockSize int) (time.Duration, error) {
	return s.WriteRangeClass(sim.ClassOther, id, off, data, random, blockSize)
}

// WriteRangeClass is WriteRange with the device charge traffic-classified.
func (s *Store) WriteRangeClass(class sim.Class, id wire.BlockID, off uint32, data []byte, random bool, blockSize int) (time.Duration, error) {
	need := int(off) + len(data)
	if blockSize < need {
		blockSize = need
	}
	b := s.getOrCreate(id, blockSize)
	b.mu.Lock()
	defer b.mu.Unlock()
	if s.eng != nil {
		if err := s.eng.WriteRange(id, off, data); err != nil {
			return 0, err
		}
		return s.dev.WriteClass(class, int64(len(data)), random, true), nil
	}
	if need > len(b.data) {
		grown := make([]byte, need)
		copy(grown, b.data)
		b.data = grown
	}
	copy(b.data[off:], data)
	return s.dev.WriteClass(class, int64(len(data)), random, true), nil
}

// WriteRangeNoLock is WriteRange for callers already holding Lock(id).
func (s *Store) WriteRangeNoLock(id wire.BlockID, off uint32, data []byte, random bool) (time.Duration, error) {
	return s.WriteRangeNoLockClass(sim.ClassOther, id, off, data, random)
}

// WriteRangeNoLockClass is WriteRangeNoLock with the device charge
// traffic-classified.
func (s *Store) WriteRangeNoLockClass(class sim.Class, id wire.BlockID, off uint32, data []byte, random bool) (time.Duration, error) {
	if s.eng != nil {
		if !s.eng.Has(id) {
			return 0, fmt.Errorf("blockstore: %v not found", id)
		}
		if err := s.eng.WriteRange(id, off, data); err != nil {
			return 0, err
		}
		return s.dev.WriteClass(class, int64(len(data)), random, true), nil
	}
	b := s.get(id)
	if b == nil {
		return 0, fmt.Errorf("blockstore: %v not found", id)
	}
	need := int(off) + len(data)
	if need > len(b.data) {
		grown := make([]byte, need)
		copy(grown, b.data)
		b.data = grown
	}
	copy(b.data[off:], data)
	return s.dev.WriteClass(class, int64(len(data)), random, true), nil
}

// Snapshot returns a copy of the block's content without device charge
// (verification/introspection only).
func (s *Store) Snapshot(id wire.BlockID) ([]byte, bool) {
	if s.eng != nil {
		return s.eng.Snapshot(id)
	}
	b := s.get(id)
	if b == nil {
		return nil, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.data...), true
}

// Has reports whether the block exists.
func (s *Store) Has(id wire.BlockID) bool {
	if s.eng != nil {
		return s.eng.Has(id)
	}
	return s.get(id) != nil
}

// Delete removes a block (node failure simulation / cleanup).
func (s *Store) Delete(id wire.BlockID) {
	if s.eng != nil {
		s.eng.Delete(id)
	}
	s.mu.Lock()
	delete(s.blocks, id)
	s.mu.Unlock()
}

// Blocks returns the IDs of all stored blocks (recovery enumeration).
func (s *Store) Blocks() []wire.BlockID {
	if s.eng != nil {
		return s.eng.Blocks()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]wire.BlockID, 0, len(s.blocks))
	for id := range s.blocks {
		out = append(out, id)
	}
	return out
}

// Size returns the byte length of a block, or -1 if absent.
func (s *Store) Size(id wire.BlockID) int {
	if s.eng != nil {
		return s.eng.Size(id)
	}
	b := s.get(id)
	if b == nil {
		return -1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.data)
}
