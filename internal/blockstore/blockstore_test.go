package blockstore

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/device"
	"repro/internal/wire"
)

func newStore() *Store {
	return New(device.New("test", device.ChameleonSSD()))
}

func bid(i int) wire.BlockID { return wire.BlockID{Ino: 1, Stripe: uint32(i)} }

func TestWriteFullReadBack(t *testing.T) {
	s := newStore()
	data := []byte("hello block store")
	if cost := s.WriteFull(bid(1), data, true); cost <= 0 {
		t.Fatal("write must cost device time")
	}
	got, cost, err := s.ReadRange(bid(1), 6, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "block" || cost <= 0 {
		t.Fatalf("read = %q, cost %v", got, cost)
	}
}

func TestReadMissingBlock(t *testing.T) {
	s := newStore()
	if _, _, err := s.ReadRange(bid(9), 0, 4, true); err == nil {
		t.Fatal("reading absent block must fail")
	}
}

func TestReadBeyondEnd(t *testing.T) {
	s := newStore()
	s.WriteFull(bid(1), make([]byte, 10), true)
	if _, _, err := s.ReadRange(bid(1), 8, 4, true); err == nil {
		t.Fatal("read past end must fail")
	}
}

func TestWriteRangeCreatesAndGrows(t *testing.T) {
	s := newStore()
	if _, err := s.WriteRange(bid(2), 100, []byte{1, 2, 3}, true, 256); err != nil {
		t.Fatal(err)
	}
	if s.Size(bid(2)) != 256 {
		t.Fatalf("size = %d, want 256 (zero-filled to blockSize)", s.Size(bid(2)))
	}
	got, _, err := s.ReadRange(bid(2), 100, 3, true)
	if err != nil || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("range content wrong: %v %v", got, err)
	}
	// A write past the current size grows the block.
	if _, err := s.WriteRange(bid(2), 300, []byte{9}, true, 256); err != nil {
		t.Fatal(err)
	}
	if s.Size(bid(2)) != 301 {
		t.Fatalf("size = %d after growth", s.Size(bid(2)))
	}
}

func TestOverwriteAccounting(t *testing.T) {
	dev := device.New("d", device.ChameleonSSD())
	s := New(dev)
	s.WriteFull(bid(1), make([]byte, 100), true) // fresh: not an overwrite
	if dev.Stats().Overwrites != 0 {
		t.Fatal("fresh full write must not count as overwrite")
	}
	s.WriteFull(bid(1), make([]byte, 100), true) // rewrite: overwrite
	if dev.Stats().Overwrites != 1 {
		t.Fatal("rewrite must count as overwrite")
	}
	s.WriteRange(bid(1), 0, []byte{1}, true, 100) // in-place: overwrite
	if dev.Stats().Overwrites != 2 {
		t.Fatal("range write must count as overwrite")
	}
}

func TestLockCreatesBlock(t *testing.T) {
	s := newStore()
	unlock := s.Lock(bid(3), 64)
	data, _, err := s.ReadRangeNoLock(bid(3), 0, 64, true)
	unlock()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, make([]byte, 64)) {
		t.Fatal("lock-created block must be zero-filled")
	}
}

func TestNoLockVariantsRequireExistence(t *testing.T) {
	s := newStore()
	if _, _, err := s.ReadRangeNoLock(bid(9), 0, 1, true); err == nil {
		t.Fatal("ReadRangeNoLock of absent block must fail")
	}
	if _, err := s.WriteRangeNoLock(bid(9), 0, []byte{1}, true); err == nil {
		t.Fatal("WriteRangeNoLock of absent block must fail")
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	s := newStore()
	s.WriteFull(bid(1), []byte{1, 2, 3}, true)
	snap, ok := s.Snapshot(bid(1))
	if !ok {
		t.Fatal("snapshot missing")
	}
	snap[0] = 99
	got, _, _ := s.ReadRange(bid(1), 0, 1, true)
	if got[0] != 1 {
		t.Fatal("snapshot must not alias stored data")
	}
	if _, ok := s.Snapshot(bid(9)); ok {
		t.Fatal("snapshot of absent block must report !ok")
	}
}

func TestDeleteAndEnumerate(t *testing.T) {
	s := newStore()
	s.WriteFull(bid(1), []byte{1}, true)
	s.WriteFull(bid(2), []byte{2}, true)
	if len(s.Blocks()) != 2 {
		t.Fatal("enumeration wrong")
	}
	s.Delete(bid(1))
	if s.Has(bid(1)) || !s.Has(bid(2)) {
		t.Fatal("delete wrong")
	}
	if s.Size(bid(1)) != -1 {
		t.Fatal("size of absent block must be -1")
	}
}

func TestConcurrentRangeWrites(t *testing.T) {
	s := newStore()
	s.WriteFull(bid(1), make([]byte, 4096), true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(g + 1)}, 64)
			for i := 0; i < 50; i++ {
				off := uint32(g * 512)
				if _, err := s.WriteRange(bid(1), off, payload, true, 4096); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < 8; g++ {
		got, _, err := s.ReadRange(bid(1), uint32(g*512), 64, true)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(g+1) {
			t.Fatalf("region %d corrupted: %d", g, got[0])
		}
	}
}
