package sim

import (
	"sync"
	"testing"
	"time"
)

func TestResourceCharge(t *testing.T) {
	r := NewResource("ssd0")
	if r.Name() != "ssd0" {
		t.Fatal("name lost")
	}
	if got := r.Charge(5 * time.Microsecond); got != 5*time.Microsecond {
		t.Fatal("Charge must return its argument")
	}
	r.Charge(10 * time.Microsecond)
	if r.Busy() != 15*time.Microsecond {
		t.Fatalf("busy = %v, want 15us", r.Busy())
	}
	if r.Ops() != 2 {
		t.Fatalf("ops = %d, want 2", r.Ops())
	}
	r.Reset()
	if r.Busy() != 0 || r.Ops() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestResourceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge must panic")
		}
	}()
	NewResource("x").Charge(-1)
}

func TestResourceConcurrent(t *testing.T) {
	r := NewResource("nic")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Charge(time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if r.Busy() != 8000*time.Nanosecond {
		t.Fatalf("busy = %v, want 8000ns", r.Busy())
	}
}

func TestLatencyRecorder(t *testing.T) {
	var l LatencyRecorder
	if l.Mean() != 0 || l.Max() != 0 || l.Count() != 0 {
		t.Fatal("zero recorder must report zeros")
	}
	l.Observe(10 * time.Microsecond)
	l.Observe(30 * time.Microsecond)
	if l.Mean() != 20*time.Microsecond {
		t.Fatalf("mean = %v", l.Mean())
	}
	if l.Max() != 30*time.Microsecond {
		t.Fatalf("max = %v", l.Max())
	}
	if l.Total() != 40*time.Microsecond {
		t.Fatalf("total = %v", l.Total())
	}
	l.Reset()
	if l.Count() != 0 {
		t.Fatal("reset failed")
	}
}

func TestSeriesSorted(t *testing.T) {
	var s Series
	s.Add(3*time.Second, 30)
	s.Add(1*time.Second, 10)
	s.Add(2*time.Second, 20)
	pts := s.Points()
	if len(pts) != 3 || pts[0].V != 10 || pts[1].V != 20 || pts[2].V != 30 {
		t.Fatalf("points not sorted: %+v", pts)
	}
}

func TestThroughputClientBound(t *testing.T) {
	// 1000 ops, 1 client, 1ms each: client-bound at 1000 ops/s.
	got := Throughput(1000, 1, time.Millisecond, nil)
	if got < 999 || got > 1001 {
		t.Fatalf("client-bound throughput = %v, want ~1000", got)
	}
	// 64 clients: 64x faster when no resource is hot.
	got = Throughput(1000, 64, time.Millisecond, nil)
	if got < 63900 || got > 64100 {
		t.Fatalf("64-client throughput = %v, want ~64000", got)
	}
}

func TestThroughputResourceBound(t *testing.T) {
	r := NewResource("ssd")
	r.Charge(10 * time.Second) // resource is the bottleneck
	got := Throughput(1000, 64, time.Microsecond, []*Resource{r})
	if got < 99 || got > 101 {
		t.Fatalf("resource-bound throughput = %v, want ~100", got)
	}
}

func TestThroughputZeroOps(t *testing.T) {
	if Throughput(0, 4, time.Millisecond, nil) != 0 {
		t.Fatal("zero ops must give zero throughput")
	}
}

func TestLatencyPercentiles(t *testing.T) {
	var l LatencyRecorder
	if l.Percentile(99) != 0 {
		t.Fatal("empty recorder percentile must be 0")
	}
	for i := 1; i <= 100; i++ {
		l.Observe(time.Duration(i) * time.Microsecond)
	}
	if p := l.Percentile(50); p != 50*time.Microsecond {
		t.Fatalf("P50 = %v", p)
	}
	if p := l.Percentile(99); p != 99*time.Microsecond {
		t.Fatalf("P99 = %v", p)
	}
	if p := l.Percentile(100); p != 100*time.Microsecond {
		t.Fatalf("P100 = %v", p)
	}
	l.Reset()
	if l.Percentile(50) != 0 {
		t.Fatal("reset must clear samples")
	}
}

func TestLatencyPercentilesBatch(t *testing.T) {
	var l LatencyRecorder
	if got := l.Percentiles(50, 99, 99.9); len(got) != 3 || got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("empty recorder batch = %v, want three zeros", got)
	}
	for i := 1; i <= 1000; i++ {
		l.Observe(time.Duration(i) * time.Microsecond)
	}
	got := l.Percentiles(50, 99, 99.9)
	want := []time.Duration{500 * time.Microsecond, 990 * time.Microsecond, 999 * time.Microsecond}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch percentiles = %v, want %v", got, want)
		}
	}
	// Order of the query list must not matter beyond positional alignment.
	rev := l.Percentiles(99.9, 50)
	if rev[0] != want[2] || rev[1] != want[0] {
		t.Fatalf("reversed query = %v", rev)
	}
	// Single-quantile path must agree with the batch path.
	if l.Percentile(99) != got[1] {
		t.Fatalf("Percentile(99) = %v, batch gave %v", l.Percentile(99), got[1])
	}
}

func TestSnapshotAndMaxBusyDelta(t *testing.T) {
	a, b := NewResource("a"), NewResource("b")
	a.Charge(5 * time.Millisecond)
	rs := []*Resource{a, b}
	before := SnapshotBusy(rs)
	if len(before) != 2 || before[0] != 5*time.Millisecond || before[1] != 0 {
		t.Fatalf("snapshot = %v", before)
	}
	a.Charge(time.Millisecond)
	b.Charge(3 * time.Millisecond)
	if d := MaxBusyDelta(rs, before); d != 3*time.Millisecond {
		t.Fatalf("delta = %v", d)
	}
	// A resource provisioned after the snapshot counts in full.
	c := NewResource("c")
	c.Charge(10 * time.Millisecond)
	if d := MaxBusyDelta(append(rs, c), before); d != 10*time.Millisecond {
		t.Fatalf("delta with new resource = %v", d)
	}
	// A nil snapshot degrades to the plain bottleneck busy time.
	if d := MaxBusyDelta(rs, nil); d != 6*time.Millisecond {
		t.Fatalf("delta from nil = %v", d)
	}
}

func TestClassAccounting(t *testing.T) {
	r := NewResource("nic")
	r.ChargeClass(ClassForegroundRead, 2*time.Millisecond)
	r.ChargeClass(ClassRebuild, 3*time.Millisecond)
	r.Charge(time.Millisecond) // untagged lands in ClassOther
	if got := r.Busy(); got != 6*time.Millisecond {
		t.Fatalf("total busy = %v", got)
	}
	if got := r.BusyClass(ClassForegroundRead); got != 2*time.Millisecond {
		t.Fatalf("fg-read busy = %v", got)
	}
	if got := r.BusyClass(ClassRebuild); got != 3*time.Millisecond {
		t.Fatalf("rebuild busy = %v", got)
	}
	if got := r.BusyClass(ClassOther); got != time.Millisecond {
		t.Fatalf("other busy = %v", got)
	}
	// Per-class busy always sums to the total.
	var sum time.Duration
	for c := Class(0); c < NumClasses; c++ {
		sum += r.BusyClass(c)
	}
	if sum != r.Busy() {
		t.Fatalf("class sum %v != total %v", sum, r.Busy())
	}
	r.Reset()
	if r.Busy() != 0 || r.BusyClass(ClassRebuild) != 0 {
		t.Fatal("Reset left class busy time")
	}
}

func TestClassSnapshotDelta(t *testing.T) {
	a, b := NewResource("a"), NewResource("b")
	rs := []*Resource{a, b}
	a.ChargeClass(ClassForegroundWrite, 4*time.Millisecond)
	a.ChargeClass(ClassDrain, 100*time.Millisecond) // must not count below
	before := SnapshotBusyClasses(rs, ForegroundClasses...)
	if before[0] != 4*time.Millisecond || before[1] != 0 {
		t.Fatalf("snapshot = %v", before)
	}
	b.ChargeClass(ClassForegroundRead, 7*time.Millisecond)
	a.ChargeClass(ClassRebuild, time.Second) // rebuild does not advance the fg clock
	if d := MaxBusyDeltaClasses(rs, before, ForegroundClasses...); d != 7*time.Millisecond {
		t.Fatalf("fg delta = %v", d)
	}
}

func TestClassString(t *testing.T) {
	if ClassRebuild.String() != "rebuild" || ClassOther.String() != "other" {
		t.Fatal("class names wrong")
	}
}
