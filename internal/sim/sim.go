// Package sim provides the virtual-time accounting primitives the
// benchmark harness uses in place of a physical testbed.
//
// Correctness-bearing state in ECFS (block contents, parity, logs) is real
// and mutated by real goroutines; only *time* is modelled. Every shared
// resource — an SSD, an HDD, a NIC — is a Resource that accumulates busy
// nanoseconds as operations are charged to it. A synchronous request path
// sums the charges it incurs into a latency sample. An experiment then
// derives aggregate throughput from the bottleneck resource
// (operational-law analysis), which is deterministic and preserves the
// relative shapes the paper reports without sleeping.
package sim

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Class tags the traffic a priced operation belongs to, so per-resource
// busy time can be split between the foreground workload and the
// maintenance machinery competing with it. The zero value, ClassOther,
// covers control traffic and anything untagged (device charges, which
// the pricing layer does not classify today).
//
// The repair scheduler uses the foreground classes as its virtual
// clock: rebuild-bandwidth tokens accrue as foreground busy time
// accumulates, which is what "cap rebuild traffic against foreground
// load" means in a virtual-time harness.
type Class uint8

// Traffic classes. Scrub is reserved for background integrity reads (no
// priced scrub traffic exists yet; Cluster.Scrub inspects stores
// in-process).
const (
	ClassOther Class = iota
	ClassForegroundRead
	ClassForegroundWrite
	ClassRebuild
	ClassDrain
	ClassScrub
	// NumClasses bounds the class space for per-class accounting arrays.
	NumClasses
)

var classNames = [NumClasses]string{
	"other", "fg-read", "fg-write", "rebuild", "drain", "scrub",
}

// String returns the class's short name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "invalid"
}

// ForegroundClasses are the classes that make up the foreground
// workload — the traffic a repair-bandwidth cap protects.
var ForegroundClasses = []Class{ClassForegroundRead, ClassForegroundWrite}

// Resource is a serially-used resource (one device, one NIC). Charging a
// duration models the resource being busy for that long. Resources are
// safe for concurrent use.
type Resource struct {
	name    string
	busy    atomic.Int64 // nanoseconds, all classes
	ops     atomic.Int64
	byClass [NumClasses]atomic.Int64 // nanoseconds per traffic class
}

// NewResource creates a named resource with zero accumulated busy time.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Charge accounts d of busy time under ClassOther and returns d
// unchanged, so call sites can simultaneously account the resource and
// extend a latency path.
func (r *Resource) Charge(d time.Duration) time.Duration {
	return r.ChargeClass(ClassOther, d)
}

// ChargeClass accounts d of busy time under the given traffic class and
// returns d unchanged. The total Busy always includes every class.
func (r *Resource) ChargeClass(c Class, d time.Duration) time.Duration {
	if d < 0 {
		panic("sim: negative charge")
	}
	if c >= NumClasses {
		c = ClassOther
	}
	r.busy.Add(int64(d))
	r.byClass[c].Add(int64(d))
	r.ops.Add(1)
	return d
}

// Busy returns the accumulated busy time across all classes.
func (r *Resource) Busy() time.Duration { return time.Duration(r.busy.Load()) }

// BusyClass returns the busy time accumulated under one traffic class.
func (r *Resource) BusyClass(c Class) time.Duration {
	if c >= NumClasses {
		return 0
	}
	return time.Duration(r.byClass[c].Load())
}

// Ops returns the number of operations charged.
func (r *Resource) Ops() int64 { return r.ops.Load() }

// Reset zeroes the accumulated busy time (all classes) and op count.
func (r *Resource) Reset() {
	r.busy.Store(0)
	r.ops.Store(0)
	for i := range r.byClass {
		r.byClass[i].Store(0)
	}
}

// SnapshotBusy records every resource's current busy time, positionally
// aligned with resources. Together with MaxBusyDelta it brackets a
// measurement window: snapshot before, delta after.
func SnapshotBusy(resources []*Resource) []time.Duration {
	out := make([]time.Duration, len(resources))
	for i, r := range resources {
		out[i] = r.Busy()
	}
	return out
}

// MaxBusyDelta returns the largest per-resource busy increase since the
// snapshot — the bottleneck duration of the bracketed window. Resources
// provisioned after the snapshot (e.g. a NIC for a client that appeared
// mid-window) count in full.
func MaxBusyDelta(resources []*Resource, before []time.Duration) time.Duration {
	var m time.Duration
	for i, r := range resources {
		var base time.Duration
		if i < len(before) {
			base = before[i]
		}
		if d := r.Busy() - base; d > m {
			m = d
		}
	}
	return m
}

// SnapshotBusyClasses records every resource's busy time summed over
// the given classes, positionally aligned with resources — the
// class-filtered sibling of SnapshotBusy. With no classes it snapshots
// nothing but zeros.
func SnapshotBusyClasses(resources []*Resource, classes ...Class) []time.Duration {
	out := make([]time.Duration, len(resources))
	for i, r := range resources {
		for _, c := range classes {
			out[i] += r.BusyClass(c)
		}
	}
	return out
}

// MaxBusyDeltaClasses returns the largest per-resource increase of the
// summed busy time of the given classes since the snapshot — how much
// the busiest resource worked *for those classes* inside the bracketed
// window. The repair scheduler uses it with ForegroundClasses as its
// token-accrual clock.
func MaxBusyDeltaClasses(resources []*Resource, before []time.Duration, classes ...Class) time.Duration {
	var m time.Duration
	for i, r := range resources {
		var base time.Duration
		if i < len(before) {
			base = before[i]
		}
		var busy time.Duration
		for _, c := range classes {
			busy += r.BusyClass(c)
		}
		if d := busy - base; d > m {
			m = d
		}
	}
	return m
}

// maxLatencySamples bounds the per-recorder sample retention used for
// percentile queries (simple reservoir: first N samples kept).
const maxLatencySamples = 1 << 17

// LatencyRecorder aggregates synchronous path latency samples and
// retains a bounded sample set for percentile queries.
type LatencyRecorder struct {
	mu      sync.Mutex
	total   time.Duration
	max     time.Duration
	n       int64
	samples []time.Duration
}

// Observe records one latency sample.
func (l *LatencyRecorder) Observe(d time.Duration) {
	l.mu.Lock()
	l.total += d
	if d > l.max {
		l.max = d
	}
	l.n++
	if len(l.samples) < maxLatencySamples {
		l.samples = append(l.samples, d)
	}
	l.mu.Unlock()
}

// Percentile returns the p-th percentile (0 < p <= 100) of the retained
// samples, or 0 with no samples.
func (l *LatencyRecorder) Percentile(p float64) time.Duration {
	return l.Percentiles(p)[0]
}

// Percentiles returns the requested percentiles (each 0 < p <= 100,
// e.g. 50, 99, 99.9) of the retained samples, positionally aligned with
// ps, from a single sort of the sample set — the tail-latency query the
// benchmark tables are built from. With no samples every entry is 0.
func (l *LatencyRecorder) Percentiles(ps ...float64) []time.Duration {
	out := make([]time.Duration, len(ps))
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return out
	}
	sorted := append([]time.Duration(nil), l.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, p := range ps {
		idx := int(p/100*float64(len(sorted))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		out[i] = sorted[idx]
	}
	return out
}

// Count returns the number of samples.
func (l *LatencyRecorder) Count() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Mean returns the mean latency, or 0 with no samples.
func (l *LatencyRecorder) Mean() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n == 0 {
		return 0
	}
	return l.total / time.Duration(l.n)
}

// Max returns the largest observed latency.
func (l *LatencyRecorder) Max() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.max
}

// Total returns the summed latency across samples.
func (l *LatencyRecorder) Total() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Reset clears all samples.
func (l *LatencyRecorder) Reset() {
	l.mu.Lock()
	l.total, l.max, l.n = 0, 0, 0
	l.samples = l.samples[:0]
	l.mu.Unlock()
}

// Series collects (virtual time, value) points for time-series figures
// such as Fig. 6a. Points may be added out of order; Points() sorts.
type Series struct {
	mu  sync.Mutex
	pts []Point
}

// Point is one sample of a time series.
type Point struct {
	T time.Duration // virtual time since experiment start
	V float64
}

// Add appends a sample.
func (s *Series) Add(t time.Duration, v float64) {
	s.mu.Lock()
	s.pts = append(s.pts, Point{T: t, V: v})
	s.mu.Unlock()
}

// Points returns the samples sorted by time.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]Point(nil), s.pts...)
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// Throughput derives aggregate operations/second for a replay using the
// bottleneck model: the experiment cannot finish faster than its busiest
// resource, nor faster than the client population can issue requests
// (clients issue synchronously, so C clients sustain C/avgLatency ops/s).
func Throughput(ops int64, clients int, avgLatency time.Duration, resources []*Resource) float64 {
	if ops == 0 {
		return 0
	}
	clientTime := time.Duration(ops) * avgLatency / time.Duration(max(clients, 1))
	bottleneck := clientTime
	for _, r := range resources {
		if b := r.Busy(); b > bottleneck {
			bottleneck = b
		}
	}
	if bottleneck <= 0 {
		return 0
	}
	return float64(ops) / bottleneck.Seconds()
}
