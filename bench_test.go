// Package-level benchmarks: one testing.B per table and figure of the
// paper's evaluation (regenerating the artifact at quick scale), plus
// micro-benchmarks of the update path and ablations of the design
// choices DESIGN.md calls out (unit size, pools per SSD, replica count,
// encoding matrix construction).
//
// Regenerate everything:
//
//	go test -bench=. -benchmem
//	go run ./cmd/tsuebench -scale paper   # larger, paper-like runs
package tsue_test

import (
	"context"
	"testing"

	tsue "repro"

	"repro/internal/bench"
	"repro/internal/erasure"
	"repro/internal/update"
)

// benchScale keeps each experiment regeneration to roughly a second.
func benchScale() bench.Scale {
	s := bench.Quick()
	s.Ops = 1500
	s.FileSize = 4 << 20
	s.Clients = []int{4, 64}
	return s
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rep, err := bench.Experiments[id](context.Background(), s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + rep.String())
		}
	}
}

// BenchmarkFig5UpdateThroughput regenerates Fig. 5: update throughput of
// FO/PL/PLR/PARIX/CoRD/TSUE across six RS geometries and two cloud
// traces on the SSD cluster.
func BenchmarkFig5UpdateThroughput(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6aRecycleOverhead regenerates Fig. 6a: TSUE IOPS over the
// run's timeline (real-time recycling does not dent throughput).
func BenchmarkFig6aRecycleOverhead(b *testing.B) { runExperiment(b, "fig6a") }

// BenchmarkFig6bMemoryUsage regenerates Fig. 6b: IOPS and log memory as
// the unit quota sweeps 2..20.
func BenchmarkFig6bMemoryUsage(b *testing.B) { runExperiment(b, "fig6b") }

// BenchmarkFig7Breakdown regenerates Fig. 7: the Baseline/O1..O5
// contribution breakdown.
func BenchmarkFig7Breakdown(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkTable1Workload regenerates Table 1: storage workload and
// network traffic per update method.
func BenchmarkTable1Workload(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2Residence regenerates Table 2: per-layer log residence
// times.
func BenchmarkTable2Residence(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig8aHDDThroughput regenerates Fig. 8a: HDD-cluster update
// throughput over the MSR volumes.
func BenchmarkFig8aHDDThroughput(b *testing.B) { runExperiment(b, "fig8a") }

// BenchmarkFig8bRecovery regenerates Fig. 8b: recovery bandwidth after
// an update phase.
func BenchmarkFig8bRecovery(b *testing.B) { runExperiment(b, "fig8b") }

// BenchmarkUpdateOp measures the end-to-end cost of one client update
// through each method's synchronous path (real execution time of the
// in-process cluster, not modeled latency).
func BenchmarkUpdateOp(b *testing.B) {
	for _, method := range tsue.AllMethods {
		b.Run(method, func(b *testing.B) {
			opts := tsue.DefaultOptions()
			opts.Method = method
			opts.BlockSize = 64 << 10
			cluster := tsue.MustNewCluster(opts)
			defer cluster.Close()
			cli := cluster.NewClient()
			ino, err := cli.Create("bench")
			if err != nil {
				b.Fatal(err)
			}
			data := make([]byte, cli.StripeSpan())
			if _, err := cli.WriteFile(ino, data); err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, 4096)
			b.SetBytes(4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := int64(i*4096) % int64(len(data)-4096)
				if _, err := cli.Update(ino, off, payload, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationUnitSize sweeps the TSUE log unit size — bigger units
// mean wider merge windows but longer residence.
func BenchmarkAblationUnitSize(b *testing.B) {
	for _, unit := range []int64{64 << 10, 256 << 10, 1 << 20} {
		b.Run(byteName(unit), func(b *testing.B) {
			ablationRun(b, func(cfg *update.Config) { cfg.UnitSize = unit })
		})
	}
}

// BenchmarkAblationPoolsPerSSD sweeps log pools per device (paper O4).
func BenchmarkAblationPoolsPerSSD(b *testing.B) {
	for _, pools := range []int{1, 2, 4, 8} {
		b.Run(intName("pools", pools), func(b *testing.B) {
			ablationRun(b, func(cfg *update.Config) { cfg.Pools = pools })
		})
	}
}

// BenchmarkAblationReplicaCount sweeps DataLog replica count (2 copies
// on SSD vs 3 on HDD per the paper's Fig. 2 note).
func BenchmarkAblationReplicaCount(b *testing.B) {
	for _, reps := range []int{0, 1, 2} {
		b.Run(intName("replicas", reps), func(b *testing.B) {
			ablationRun(b, func(cfg *update.Config) { cfg.DataLogReplicas = reps })
		})
	}
}

func ablationRun(b *testing.B, mutate func(*update.Config)) {
	b.Helper()
	s := benchScale()
	tr := tsue.TenCloudTrace(s.FileSize, s.Ops, s.Seed)
	for i := 0; i < b.N; i++ {
		iops, err := bench.AblationRun(context.Background(), "tsue", 6, 4, tr, s, mutate)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(iops, "modeled-iops")
	}
}

// BenchmarkAblationMatrixKind compares Vandermonde and Cauchy encoding
// matrix constructions on the full encode path.
func BenchmarkAblationMatrixKind(b *testing.B) {
	for _, kind := range []erasure.MatrixKind{erasure.Vandermonde, erasure.Cauchy} {
		b.Run(kind.String(), func(b *testing.B) {
			code := erasure.MustNew(6, 4, kind)
			shards := make([][]byte, 6)
			for i := range shards {
				shards[i] = make([]byte, 256<<10)
			}
			b.SetBytes(6 * 256 << 10)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := code.Encode(shards); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func byteName(n int64) string {
	switch {
	case n >= 1<<20:
		return intName("unit_MiB", int(n>>20))
	default:
		return intName("unit_KiB", int(n>>10))
	}
}

func intName(prefix string, n int) string {
	digits := ""
	if n == 0 {
		digits = "0"
	}
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return prefix + "_" + digits
}
