// Command tracegen emits synthetic block traces in the repository's CSV
// format.
//
// Usage:
//
//	tracegen -trace ten -ops 100000 -size 1073741824 > ten.csv
//	tracegen -trace msr:src10 -ops 50000 -o src10.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/trace"
)

func main() {
	var (
		name = flag.String("trace", "ali", "workload: ali | ten | msr:<volume> (volumes: "+strings.Join(trace.MSRVolumes, ",")+")")
		ops  = flag.Int("ops", 10000, "number of requests")
		size = flag.Int64("size", 1<<30, "volume size in bytes")
		seed = flag.Int64("seed", 1, "generator seed")
		out  = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var t *trace.Trace
	switch {
	case *name == "ali":
		t = trace.AliCloud(*size, *ops, *seed)
	case *name == "ten":
		t = trace.TenCloud(*size, *ops, *seed)
	case strings.HasPrefix(*name, "msr:"):
		vol := strings.TrimPrefix(*name, "msr:")
		var ok bool
		t, ok = trace.MSR(vol, *size, *ops, *seed)
		if !ok {
			fmt.Fprintf(os.Stderr, "tracegen: unknown MSR volume %q\n", vol)
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown trace %q\n", *name)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := t.WriteCSV(w); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	st := t.Stats()
	fmt.Fprintf(os.Stderr, "tracegen: %s: %d ops, %.0f%% updates, %.0f%% of updates 4KiB, %.1f MiB update volume\n",
		t.Name, st.Ops, 100*st.UpdateFrac, 100*st.Frac4K, float64(st.UpdateBytes)/(1<<20))
}
