// Command benchdiff compares two combined bench-trajectory snapshots
// (the BENCH_*.json files written by `tsuebench -combined`) and fails
// when the newer one regressed beyond tolerance.
//
//	benchdiff -base BENCH_pr6.json -new BENCH_pr8.json
//	benchdiff -mode smoke -base BENCH_pr8.json -new BENCH_ci.json
//
// Cells are keyed by (report ID, row label, column name), where the row
// label is the first cell of the row — "encode/binary", "recover/prio",
// "writefile/coalesced". Every column name maps to a metric class that
// decides the comparison direction and the tolerance band:
//
//   - time  (ns/op, time_ms, snapshot_ms, reopen_ms) — lower is better
//   - rate  (MB/s, repair_MBps, foreground_MBps,
//     lookups_per_s, creates_per_s)                  — higher is better
//   - bytes (B/op)                               — lower is better
//   - allocs (allocs/op)                         — lower is better, with
//     absolute slack so a 0-alloc baseline does not make any nonzero
//     measurement an infinite-ratio failure
//
// Columns outside the table (workload-shape counters like blocks or
// hot_reads, per-trace fig8b throughputs) are informational: printed
// when they move a lot, never fatal. Likewise rows or reports present
// in only one snapshot are reported as added/removed, never fatal —
// the trajectory is expected to grow new rows over time.
//
// Two tolerance modes:
//
//   - tight (default): both snapshots come from the same machine via
//     `make bench-json`; catches real same-host regressions while
//     absorbing ordinary run-to-run noise.
//   - smoke: the new snapshot was regenerated on whatever hardware CI
//     happened to land on. Time and rate bands widen to
//     catastrophic-only; the allocation metrics stay meaningful because
//     B/op and allocs/op are machine-independent.
//
// Exit codes: 0 no regression, 1 regression beyond tolerance, 2 usage
// or input error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// report mirrors bench.Report's JSON shape; decoding locally keeps the
// tool usable against old snapshots even if the bench package grows.
type report struct {
	ID     string     `json:"ID"`
	Title  string     `json:"Title"`
	Header []string   `json:"Header"`
	Rows   [][]string `json:"Rows"`
	Notes  []string   `json:"Notes"`
}

type combined struct {
	Reports []*report `json:"reports"`
}

type metricClass int

const (
	classInfo   metricClass = iota // report-only, never fatal
	classTime                      // lower is better
	classRate                      // higher is better
	classBytes                     // lower is better
	classAllocs                    // lower is better, absolute slack
)

func classify(column string) metricClass {
	switch column {
	case "ns/op", "time_ms", "snapshot_ms", "reopen_ms":
		return classTime
	case "MB/s", "repair_MBps", "foreground_MBps", "lookups_per_s", "creates_per_s":
		return classRate
	case "B/op":
		return classBytes
	case "allocs/op":
		return classAllocs
	}
	return classInfo
}

// band is the accepted worsening: for lower-is-better metrics a new
// value regresses when new > base*ratio + abs, for higher-is-better
// when new < base/ratio - abs. The absolute term keeps tiny baselines
// (0 allocs/op, sub-millisecond timings) from turning measurement
// jitter into infinite ratios.
type band struct {
	ratio float64
	abs   float64
}

type tolerances map[metricClass]band

var tolTight = tolerances{
	classTime:   {ratio: 2.0, abs: 0.5},
	classRate:   {ratio: 2.0, abs: 0.5},
	classBytes:  {ratio: 1.5, abs: 512},
	classAllocs: {ratio: 1.25, abs: 2},
}

var tolSmoke = tolerances{
	classTime:   {ratio: 8.0, abs: 2},
	classRate:   {ratio: 8.0, abs: 2},
	classBytes:  {ratio: 2.5, abs: 4096},
	classAllocs: {ratio: 1.5, abs: 4},
}

// parseCell extracts the leading numeric value of a table cell.
// "1962.6" parses; "60599 rt/s" parses its prefix; "-" and labels skip.
func parseCell(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	end := 0
	for end < len(s) {
		c := s[end]
		if c >= '0' && c <= '9' || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E' {
			end++
			continue
		}
		break
	}
	if end == 0 {
		return 0, false
	}
	v, err := strconv.ParseFloat(s[:end], 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

type cellKey struct {
	report, row, column string
}

type cell struct {
	class metricClass
	value float64
}

// index flattens a snapshot into cells keyed by (report, row label,
// column). Duplicate row labels within a report get a #n suffix so a
// repeated label still compares positionally instead of silently
// shadowing.
func index(snap *combined) map[cellKey]cell {
	out := make(map[cellKey]cell)
	for _, rep := range snap.Reports {
		seen := make(map[string]int)
		for _, row := range rep.Rows {
			if len(row) == 0 {
				continue
			}
			label := row[0]
			if n := seen[label]; n > 0 {
				label = fmt.Sprintf("%s#%d", label, n)
			}
			seen[row[0]]++
			for i := 1; i < len(row) && i < len(rep.Header); i++ {
				v, ok := parseCell(row[i])
				if !ok {
					continue
				}
				col := rep.Header[i]
				out[cellKey{rep.ID, label, col}] = cell{class: classify(col), value: v}
			}
		}
	}
	return out
}

type finding struct {
	key        cellKey
	base, new  float64
	class      metricClass
	regression bool // beyond tolerance (fatal); false = informational move
}

func (f finding) String() string {
	dir := "↑"
	if f.new < f.base {
		dir = "↓"
	}
	pct := 0.0
	if f.base != 0 {
		pct = (f.new - f.base) / f.base * 100
	}
	return fmt.Sprintf("%s / %s / %s: %g -> %g (%s%.1f%%)",
		f.key.report, f.key.row, f.key.column, f.base, f.new, dir, pct)
}

// compare walks every cell present in both snapshots and flags moves.
// Gated classes produce fatal findings beyond their band; informational
// columns are surfaced (not failed) when they moved by more than 2x,
// just so a wildly different run shape is visible in the log.
// diskBoundReports name experiments whose gated metrics are real disk
// I/O rather than modeled time: their rates swing with the machine's
// storage stack (page cache state, fs, media), so they get twice the
// tolerance ratio of the modeled metrics in either mode.
// mds-scale qualifies through its durable rows: snapshot_ms and
// reopen_ms are real fsync-and-replay disk work, and the durable
// lookup/create rates sit behind the same storage stack.
var diskBoundReports = map[string]bool{"storage": true, "mds-scale": true}

func compare(base, new map[cellKey]cell, tol tolerances) (findings []finding, onlyBase, onlyNew []cellKey) {
	for k, b := range base {
		n, ok := new[k]
		if !ok {
			onlyBase = append(onlyBase, k)
			continue
		}
		f := finding{key: k, base: b.value, new: n.value, class: b.class}
		band, gated := tol[b.class]
		if diskBoundReports[k.report] {
			band.ratio *= 2
		}
		switch {
		case gated && lowerBetter(b.class) && n.value > b.value*band.ratio+band.abs:
			f.regression = true
		case gated && !lowerBetter(b.class) && n.value < b.value/band.ratio-band.abs:
			f.regression = true
		case !gated && movedWildly(b.value, n.value):
			// informational column; fall through with regression=false
		default:
			continue
		}
		findings = append(findings, f)
	}
	for k := range new {
		if _, ok := base[k]; !ok {
			onlyNew = append(onlyNew, k)
		}
	}
	return findings, onlyBase, onlyNew
}

func lowerBetter(c metricClass) bool { return c != classRate }

func movedWildly(base, new float64) bool {
	lo, hi := base, new
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo <= 0 {
		return hi-lo > 4 // count-like columns near zero: only big jumps
	}
	return hi/lo > 2
}

func load(path string) (*combined, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap combined
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(snap.Reports) == 0 {
		return nil, fmt.Errorf("%s: no reports (is this a tsuebench -combined file?)", path)
	}
	return &snap, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	basePath := fs.String("base", "", "baseline trajectory snapshot (BENCH_*.json)")
	newPath := fs.String("new", "", "candidate trajectory snapshot to gate")
	mode := fs.String("mode", "tight", "tolerance mode: tight (same-machine) or smoke (CI hardware, wide time/rate bands)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *basePath == "" || *newPath == "" {
		fmt.Fprintln(stderr, "benchdiff: -base and -new are required")
		fs.Usage()
		return 2
	}
	var tol tolerances
	switch *mode {
	case "tight":
		tol = tolTight
	case "smoke":
		tol = tolSmoke
	default:
		fmt.Fprintf(stderr, "benchdiff: unknown -mode %q (want tight or smoke)\n", *mode)
		return 2
	}

	baseSnap, err := load(*basePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	newSnap, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}

	baseCells, newCells := index(baseSnap), index(newSnap)
	findings, onlyBase, onlyNew := compare(baseCells, newCells, tol)

	shared := 0
	for k := range baseCells {
		if _, ok := newCells[k]; ok {
			shared++
		}
	}
	fmt.Fprintf(stdout, "benchdiff %s: %s -> %s, %d cells compared\n", *mode, *basePath, *newPath, shared)
	if len(onlyNew) > 0 {
		fmt.Fprintf(stdout, "  %d cells only in %s (new rows are fine: the trajectory grows)\n", len(onlyNew), *newPath)
	}
	if len(onlyBase) > 0 {
		fmt.Fprintf(stdout, "  %d cells only in %s (rows dropped from the suite)\n", len(onlyBase), *basePath)
	}

	fatal := 0
	for _, f := range findings {
		if f.regression {
			fatal++
			fmt.Fprintf(stdout, "  REGRESSION  %s\n", f)
		} else {
			fmt.Fprintf(stdout, "  info        %s\n", f)
		}
	}
	if fatal > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d regression(s) beyond %s tolerance\n", fatal, *mode)
		return 1
	}
	fmt.Fprintln(stdout, "  no regressions beyond tolerance")
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
