package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// snapshot fabricates a combined trajectory file with a single codec
// report; values is rows of [label, ns/op, MB/s, B/op, allocs/op].
func snapshot(t *testing.T, name string, values [][]string) string {
	t.Helper()
	var rows []string
	for _, v := range values {
		rows = append(rows, `["`+strings.Join(v, `","`)+`"]`)
	}
	doc := `{"reports":[{"ID":"codec","Title":"wire codec","Header":["benchmark","ns/op","MB/s","B/op","allocs/op"],"Rows":[` +
		strings.Join(rows, ",") + `],"Notes":null}]}`
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func diff(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	t.Logf("exit=%d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	return code, out.String(), errb.String()
}

// An injected regression — ns/op more than doubled, allocs/op jumped
// past the absolute slack — must make benchdiff exit non-zero and name
// the offending cells.
func TestInjectedRegressionFails(t *testing.T) {
	base := snapshot(t, "base.json", [][]string{
		{"encode/binary", "1500", "43000", "0", "0"},
		{"decode/binary", "50", "1300000", "24", "1"},
	})
	regressed := snapshot(t, "new.json", [][]string{
		{"encode/binary", "5000", "12000", "4096", "7"}, // time 3.3x, allocs 0 -> 7
		{"decode/binary", "52", "1250000", "24", "1"},
	})
	code, out, _ := diff(t, "-base", base, "-new", regressed)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (regression must be fatal)", code)
	}
	for _, cell := range []string{"ns/op", "allocs/op"} {
		if !strings.Contains(out, "REGRESSION  codec / encode/binary / "+cell) {
			t.Errorf("output does not flag encode/binary %s regression", cell)
		}
	}
	if strings.Contains(out, "REGRESSION  codec / decode/binary") {
		t.Errorf("decode/binary moved within noise but was flagged fatal")
	}
}

// Ordinary run-to-run noise stays green in tight mode.
func TestNoiseWithinTolerancePasses(t *testing.T) {
	base := snapshot(t, "base.json", [][]string{
		{"encode/binary", "1500", "43000", "0", "0"},
		{"roundtrip/tcp", "16000", "4100", "210", "3"},
	})
	noisy := snapshot(t, "new.json", [][]string{
		{"encode/binary", "1950", "33000", "0", "0"}, // +30% time: noise
		{"roundtrip/tcp", "13000", "5000", "224", "4"},
	})
	if code, _, _ := diff(t, "-base", base, "-new", noisy); code != 0 {
		t.Fatalf("exit = %d, want 0 (within-tolerance drift must pass)", code)
	}
}

// Rows present in only one snapshot are informational: a trajectory
// that grows new benchmarks (or retires old ones) must not fail.
func TestAddedAndRemovedRowsAreNotFatal(t *testing.T) {
	base := snapshot(t, "base.json", [][]string{
		{"encode/binary", "1500", "43000", "0", "0"},
		{"retired/bench", "10", "10", "10", "1"},
	})
	grown := snapshot(t, "new.json", [][]string{
		{"encode/binary", "1500", "43000", "0", "0"},
		{"writefile/coalesced", "900000", "145", "30000", "200"},
	})
	code, out, _ := diff(t, "-base", base, "-new", grown)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (added/removed rows are informational)", code)
	}
	if !strings.Contains(out, "only in") {
		t.Errorf("added/removed rows not mentioned in output:\n%s", out)
	}
}

// Smoke mode tolerates cross-machine time swings but still gates the
// machine-independent allocation metrics.
func TestSmokeModeGatesAllocsOnly(t *testing.T) {
	base := snapshot(t, "base.json", [][]string{
		{"encode/binary", "1500", "43000", "0", "0"},
	})
	slowMachine := snapshot(t, "slow.json", [][]string{
		{"encode/binary", "7000", "9500", "0", "0"}, // 4.7x slower hardware
	})
	if code, _, _ := diff(t, "-mode", "smoke", "-base", base, "-new", slowMachine); code != 0 {
		t.Fatalf("exit = %d, want 0 (smoke mode must absorb hardware deltas)", code)
	}
	leaky := snapshot(t, "leaky.json", [][]string{
		{"encode/binary", "7000", "9500", "65536", "40"}, // allocs appeared
	})
	if code, _, _ := diff(t, "-mode", "smoke", "-base", base, "-new", leaky); code != 1 {
		t.Fatalf("exit = %d, want 1 (allocs/op is machine-independent and stays gated in smoke mode)", code)
	}
}

func TestBadInputsExitTwo(t *testing.T) {
	good := snapshot(t, "good.json", [][]string{{"encode/binary", "1", "1", "0", "0"}})
	if code, _, _ := diff(t); code != 2 {
		t.Errorf("missing flags: exit != 2")
	}
	if code, _, _ := diff(t, "-base", good, "-new", filepath.Join(t.TempDir(), "absent.json")); code != 2 {
		t.Errorf("missing file: exit != 2")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	os.WriteFile(empty, []byte(`{"reports":[]}`), 0o644)
	if code, _, _ := diff(t, "-base", good, "-new", empty); code != 2 {
		t.Errorf("empty snapshot: exit != 2")
	}
	if code, _, _ := diff(t, "-mode", "loose", "-base", good, "-new", good); code != 2 {
		t.Errorf("unknown mode: exit != 2")
	}
}

// The committed baseline must diff cleanly against itself — guards the
// parser against the real file's shape ("-" cells, rt/s suffixes).
func TestCommittedBaselineSelfDiff(t *testing.T) {
	for _, name := range []string{"BENCH_pr6.json", "BENCH_pr8.json"} {
		path := filepath.Join("..", "..", name)
		if _, err := os.Stat(path); err != nil {
			t.Logf("skip %s: %v", name, err)
			continue
		}
		if code, _, _ := diff(t, "-base", path, "-new", path); code != 0 {
			t.Errorf("%s vs itself: exit != 0", name)
		}
	}
}
