// Command ecfscli is a minimal client for a TCP-deployed ECFS cluster
// (see cmd/ecfsd).
//
// The self-discovering mode needs only the MDS address — geometry,
// block size and node addresses come from wire.KResolveAddr:
//
//	ecfscli -mds :7000 put <name> <localfile>
//	ecfscli -mds :7000 get <name> <off> <len>
//	ecfscli -mds :7000 update <name> <off> <hexbytes>
//
// The static mode predating address discovery still works:
//
//	ecfscli -nodes 0=:7000,1=:7001,... -k 2 -m 1 put <name> <localfile>
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/ecfs"
	"repro/internal/erasure"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	var (
		mdsAddr = flag.String("mds", "", "MDS address: self-discover nodes, geometry and block size (preferred)")
		nodes   = flag.String("nodes", "", "static node address map: 0=host:port,1=host:port,...")
		k       = flag.Int("k", 6, "data blocks per stripe (static mode)")
		m       = flag.Int("m", 4, "parity blocks per stripe (static mode)")
		block   = flag.Int("block", 1<<20, "block size in bytes (static mode)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) < 2 {
		usage()
	}
	ctx := context.Background()

	var cli *ecfs.Client
	switch {
	case *mdsAddr != "":
		rc, err := ecfs.Dial(ctx, *mdsAddr)
		if err != nil {
			fatal(err)
		}
		defer rc.Close()
		cli = rc.Client
	case *nodes != "":
		addrs, err := parseNodes(*nodes)
		if err != nil {
			fatal(err)
		}
		rpc := transport.NewTCPClient(addrs)
		defer rpc.Close()
		code, err := erasure.New(*k, *m, erasure.Vandermonde)
		if err != nil {
			fatal(err)
		}
		cli = ecfs.NewClient(wire.ClientIDBase, rpc, code, *block)
	default:
		fatal(fmt.Errorf("-mds or -nodes required"))
	}

	f, err := cli.Open(ctx, args[1])
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	switch args[0] {
	case "put":
		if len(args) != 3 {
			usage()
		}
		data, err := os.ReadFile(args[2])
		if err != nil {
			fatal(err)
		}
		if _, err := f.WriteAt(data, 0); err != nil {
			fatal(err)
		}
		stripes, err := f.Stripes(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ecfscli: wrote %q as ino %d (%d bytes, %d stripes)\n", args[1], f.Ino(), len(data), stripes)
	case "get":
		if len(args) != 4 {
			usage()
		}
		off, size := parseI64(args[2]), parseI64(args[3])
		data, _, err := f.ReadRange(ctx, off, int(size))
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(data)
	case "update":
		if len(args) != 4 {
			usage()
		}
		payload, err := hex.DecodeString(args[3])
		if err != nil {
			fatal(fmt.Errorf("bad hex payload: %w", err))
		}
		lat, err := f.UpdateAt(ctx, parseI64(args[2]), payload, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ecfscli: updated %d bytes at %s (modeled latency %v)\n", len(payload), args[2], lat)
	default:
		usage()
	}
}

func parseNodes(s string) (map[wire.NodeID]string, error) {
	if s == "" {
		return nil, fmt.Errorf("-nodes required")
	}
	out := make(map[wire.NodeID]string)
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad -nodes entry %q", part)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, fmt.Errorf("bad node id %q", kv[0])
		}
		out[wire.NodeID(id)] = kv[1]
	}
	return out, nil
}

func parseI64(s string) int64 {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		fatal(fmt.Errorf("bad number %q", s))
	}
	return v
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ecfscli -mds host:port | -nodes 0=addr,... [-k K -m M -block N]  put|get|update ...")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ecfscli: %v\n", err)
	os.Exit(1)
}
