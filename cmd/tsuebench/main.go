// Command tsuebench regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	tsuebench                         # all experiments at quick scale
//	tsuebench -exp fig5 -scale paper  # one experiment, paper scale
//	tsuebench -exp table1 -ops 20000 -osds 16
//	tsuebench -exp recovery -recovery-workers 1,4,16
//	tsuebench -exp recovery-multi     # fail, recover, fail another, recover
//	tsuebench -exp repair             # read-through repair (FIFO vs prioritized) + drain/decommission
//	tsuebench -exp fig8b -fig8b-workers 1,4,16
//	tsuebench -exp mds-scale          # metadata sharding: lookup/create + StripesOn vs shard count
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id (fig5, fig6a, fig6b, fig7, table1, table2, fig8a, fig8b), an extension (latency, compression, recovery, recovery-multi, repair, mds-scale), or 'all'")
		scale     = flag.String("scale", "quick", "experiment scale: quick | paper")
		ops       = flag.Int("ops", 0, "override trace operation count")
		osds      = flag.Int("osds", 0, "override OSD count")
		seed      = flag.Int64("seed", 0, "override workload seed")
		clients   = flag.String("clients", "", "override client sweep, e.g. 4,16,64")
		rworkers  = flag.String("recovery-workers", "", "override the recovery experiment's worker sweep, e.g. 1,4,16")
		f8workers = flag.String("fig8b-workers", "", "add a rebuild-worker axis to the fig8b HDD recovery sweep, e.g. 1,4,16")
	)
	flag.Parse()

	var s bench.Scale
	switch *scale {
	case "quick":
		s = bench.Quick()
	case "paper":
		s = bench.Paper()
	default:
		fmt.Fprintf(os.Stderr, "tsuebench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *ops > 0 {
		s.Ops = *ops
	}
	if *osds > 0 {
		s.NumOSDs = *osds
	}
	if *seed != 0 {
		s.Seed = *seed
	}
	if *clients != "" {
		s.Clients = parseIntList("clients", *clients)
	}
	if *rworkers != "" {
		s.RecoveryWorkers = parseIntList("recovery-workers", *rworkers)
	}
	if *f8workers != "" {
		s.Fig8bWorkers = parseIntList("fig8b-workers", *f8workers)
	}

	lookup := func(id string) (func(bench.Scale) (*bench.Report, error), bool) {
		if fn, ok := bench.Experiments[id]; ok {
			return fn, true
		}
		fn, ok := bench.Extensions[id]
		return fn, ok
	}
	ids := bench.Order
	if *exp != "all" {
		if _, ok := lookup(*exp); !ok {
			fmt.Fprintf(os.Stderr, "tsuebench: unknown experiment %q (want %s, latency, compression, recovery, recovery-multi, repair, mds-scale, or all)\n", *exp, strings.Join(bench.Order, ", "))
			os.Exit(2)
		}
		ids = []string{*exp}
	}
	for _, id := range ids {
		fn, _ := lookup(id)
		rep, err := fn(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsuebench: %s: %v\n", id, err)
			os.Exit(1)
		}
		rep.Fprint(os.Stdout)
	}
}

// parseIntList parses a comma-separated list of positive ints or exits.
func parseIntList(flagName, v string) []int {
	var out []int
	for _, f := range strings.Split(v, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "tsuebench: bad -%s %q\n", flagName, v)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}
