// Command tsuebench regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	tsuebench                         # all experiments at quick scale
//	tsuebench -exp fig5 -scale paper  # one experiment, paper scale
//	tsuebench -exp table1 -ops 20000 -osds 16
//	tsuebench -exp recovery -recovery-workers 1,4,16
//	tsuebench -exp recovery-multi     # fail, recover, fail another, recover
//	tsuebench -exp repair             # read-through repair (FIFO vs prioritized), drain/decommission, capped-drain sweep
//	tsuebench -exp repair -max-rebuild-mbps 50   # explicit scheduler cap for the capped drain row
//	tsuebench -exp fig8b -fig8b-workers 1,4,16
//	tsuebench -exp mds-scale          # metadata sharding: lookup/create + StripesOn vs shard count
//	tsuebench -exp codec              # wire codec + transport microbenchmarks (gob vs binary)
//	tsuebench -exp scenario           # multi-tenant soak with scheduled fault injection + invariant checks
//	tsuebench -exp storage            # durable OSD storage engine: WAL sync policies, warm/cold reads, crash-reopen redo
//	tsuebench -exp scenario -scenario churn -tenants 4 -fault-seed 7 -soak-duration 30s
//	tsuebench -exp fig5 -json         # also write machine-readable BENCH_fig5.json
//	tsuebench -exp repair,fig8b,codec -combined BENCH_pr6.json
//	                                  # several experiments, one combined JSON trajectory file
//
// A SIGINT/SIGTERM cancels the run context: the in-flight experiment
// aborts at its next operation instead of running to completion.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/bench"
	"repro/internal/scenario"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id ("+strings.Join(knownExperiments(), ", ")+"), a comma-separated list, or 'all'")
		scale      = flag.String("scale", "quick", "experiment scale: quick | paper")
		ops        = flag.Int("ops", 0, "override trace operation count")
		osds       = flag.Int("osds", 0, "override OSD count")
		seed       = flag.Int64("seed", 0, "override workload seed")
		clients    = flag.String("clients", "", "override client sweep, e.g. 4,16,64")
		rworkers   = flag.String("recovery-workers", "", "override the recovery experiment's worker sweep, e.g. 1,4,16")
		f8workers  = flag.String("fig8b-workers", "", "add a rebuild-worker axis to the fig8b HDD recovery sweep, e.g. 1,4,16")
		rebuildCap = flag.Float64("max-rebuild-mbps", 0, "rebuild-bandwidth cap (decimal MB/s) for the repair experiment's capped drain row; 0 derives it from the uncapped baseline")
		scen       = flag.String("scenario", "", "fault-mix preset for the scenario experiment ("+strings.Join(scenario.Presets(), " | ")+"); empty selects mixed")
		tenants    = flag.Int("tenants", 0, "tenant count for the scenario experiment; 0 selects the scenario default")
		faultSeed  = flag.Int64("fault-seed", 0, "fault-timeline seed for the scenario experiment; 0 falls back to -seed")
		soak       = flag.Duration("soak-duration", 0, "wall-clock soak budget for the scenario experiment (e.g. 30s); 0 runs exactly one pass")
		jsonOut    = flag.Bool("json", false, "additionally write each report as machine-readable BENCH_<id>.json")
		outDir     = flag.String("out", ".", "directory for -json output files")
		combined   = flag.String("combined", "", "additionally write every selected report into one combined JSON file (a bench trajectory snapshot)")
	)
	flag.Parse()

	var s bench.Scale
	switch *scale {
	case "quick":
		s = bench.Quick()
	case "paper":
		s = bench.Paper()
	default:
		fmt.Fprintf(os.Stderr, "tsuebench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *ops > 0 {
		s.Ops = *ops
	}
	if *osds > 0 {
		s.NumOSDs = *osds
	}
	if *seed != 0 {
		s.Seed = *seed
	}
	if *clients != "" {
		s.Clients = parseIntList("clients", *clients)
	}
	if *rworkers != "" {
		s.RecoveryWorkers = parseIntList("recovery-workers", *rworkers)
	}
	if *f8workers != "" {
		s.Fig8bWorkers = parseIntList("fig8b-workers", *f8workers)
	}
	if *rebuildCap > 0 {
		s.MaxRebuildMBps = *rebuildCap
	}
	s.Scenario = *scen
	if *tenants > 0 {
		s.Tenants = *tenants
	}
	s.FaultSeed = *faultSeed
	if *soak > 0 {
		s.SoakDuration = *soak
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	lookup := func(id string) (func(context.Context, bench.Scale) (*bench.Report, error), bool) {
		if fn, ok := bench.Experiments[id]; ok {
			return fn, true
		}
		fn, ok := bench.Extensions[id]
		return fn, ok
	}
	ids := bench.Order
	if *exp != "all" {
		ids = nil
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if _, ok := lookup(id); !ok {
				fmt.Fprintf(os.Stderr, "tsuebench: unknown experiment %q (want %s, or all)\n", id, strings.Join(knownExperiments(), ", "))
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}
	var reports []*bench.Report
	for _, id := range ids {
		fn, _ := lookup(id)
		rep, err := fn(ctx, s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsuebench: %s: %v\n", id, err)
			os.Exit(1)
		}
		rep.Fprint(os.Stdout)
		reports = append(reports, rep)
		if *jsonOut {
			if err := writeJSON(*outDir, rep); err != nil {
				fmt.Fprintf(os.Stderr, "tsuebench: %s: %v\n", id, err)
				os.Exit(1)
			}
		}
	}
	if *combined != "" {
		if err := writeCombined(*combined, reports); err != nil {
			fmt.Fprintf(os.Stderr, "tsuebench: %v\n", err)
			os.Exit(1)
		}
	}
}

// knownExperiments lists every accepted id — the paper's experiments in
// order, then the extensions sorted — built from the live tables so the
// usage text cannot drift from what the lookup accepts.
func knownExperiments() []string {
	ids := append([]string{}, bench.Order...)
	ext := make([]string, 0, len(bench.Extensions))
	for id := range bench.Extensions {
		ext = append(ext, id)
	}
	sort.Strings(ext)
	return append(ids, ext...)
}

// writeJSON writes one report as BENCH_<id>.json in dir.
func writeJSON(dir string, rep *bench.Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+rep.ID+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tsuebench: wrote %s\n", path)
	return nil
}

// writeCombined writes every selected report into one JSON file — the
// shape future PRs append to for a benchmark trajectory across PRs.
func writeCombined(path string, reports []*bench.Report) error {
	data, err := json.MarshalIndent(map[string]any{"reports": reports}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tsuebench: wrote %s\n", path)
	return nil
}

// parseIntList parses a comma-separated list of positive ints or exits.
func parseIntList(flagName, v string) []int {
	var out []int
	for _, f := range strings.Split(v, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "tsuebench: bad -%s %q\n", flagName, v)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}
