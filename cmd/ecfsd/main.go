// Command ecfsd runs one ECFS node — the metadata server or an OSD —
// over real TCP, so the same file system that the benchmark harness
// drives in-process can be deployed as an actual distributed cluster.
//
// A 3-OSD toy cluster on one machine:
//
//	ecfsd -role mds -listen :7000 -k 2 -m 1 -osds 3 &
//	ecfsd -role osd -id 1 -listen :7001 -nodes 0=:7000,1=:7001,2=:7002,3=:7003 &
//	ecfsd -role osd -id 2 -listen :7002 -nodes 0=:7000,1=:7001,2=:7002,3=:7003 &
//	ecfsd -role osd -id 3 -listen :7003 -nodes 0=:7000,1=:7001,2=:7002,3=:7003 &
//	ecfscli -nodes 0=:7000,1=:7001,2=:7002,3=:7003 -k 2 -m 1 put file.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/device"
	"repro/internal/ecfs"
	"repro/internal/erasure"
	"repro/internal/transport"
	"repro/internal/update"
	"repro/internal/wire"
)

func main() {
	var (
		role   = flag.String("role", "osd", "node role: mds | osd")
		id     = flag.Int("id", 1, "OSD node id (1..N); the MDS is node 0")
		listen = flag.String("listen", ":7000", "listen address")
		nodes  = flag.String("nodes", "", "node address map: 0=host:port,1=host:port,...")
		method = flag.String("method", "tsue", "update method: "+strings.Join(update.AllMethods, ", "))
		k      = flag.Int("k", 6, "data blocks per stripe")
		m      = flag.Int("m", 4, "parity blocks per stripe")
		osds   = flag.Int("osds", 16, "cluster OSD count (MDS role)")
		block  = flag.Int("block", 1<<20, "block size in bytes")
		hdd    = flag.Bool("hdd", false, "use the HDD device profile")
	)
	flag.Parse()

	switch *role {
	case "mds":
		ids := make([]wire.NodeID, *osds)
		for i := range ids {
			ids[i] = wire.NodeID(i + 1)
		}
		mds, err := ecfs.NewMDS(ids, *k, *m)
		if err != nil {
			fatal(err)
		}
		srv, err := transport.ServeTCP(wire.MDSNode, *listen, mds.Handler)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ecfsd: mds serving RS(%d,%d) for %d OSDs on %s\n", *k, *m, *osds, srv.Addr())
		waitSignal()
		srv.Close()
	case "osd":
		addrs, err := parseNodes(*nodes)
		if err != nil {
			fatal(err)
		}
		prof := device.ChameleonSSD()
		if *hdd {
			prof = device.Datacenter2TBHDD()
		}
		cfg := update.DefaultConfig()
		cfg.BlockSize = *block
		rpc := transport.NewTCPClient(addrs)
		defer rpc.Close()
		osd, err := ecfs.NewOSD(wire.NodeID(*id), prof, rpc, *method, cfg, erasure.Vandermonde)
		if err != nil {
			fatal(err)
		}
		defer osd.Close()
		srv, err := transport.ServeTCP(wire.NodeID(*id), *listen, osd.Handler)
		if err != nil {
			fatal(err)
		}
		stop := make(chan struct{})
		osd.StartHeartbeats(2*time.Second, stop)
		fmt.Printf("ecfsd: osd %d (%s, %s) serving on %s\n", *id, *method, prof.Kind, srv.Addr())
		waitSignal()
		close(stop)
		srv.Close()
	default:
		fatal(fmt.Errorf("unknown role %q", *role))
	}
}

func parseNodes(s string) (map[wire.NodeID]string, error) {
	if s == "" {
		return nil, fmt.Errorf("ecfsd: -nodes required for OSD role")
	}
	out := make(map[wire.NodeID]string)
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("ecfsd: bad -nodes entry %q", part)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, fmt.Errorf("ecfsd: bad node id %q", kv[0])
		}
		out[wire.NodeID(id)] = kv[1]
	}
	return out, nil
}

func waitSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	<-ch
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ecfsd: %v\n", err)
	os.Exit(1)
}
