// Command ecfsd runs one ECFS node — the metadata server or an OSD —
// over real TCP, so the same file system that the benchmark harness
// drives in-process can be deployed as an actual distributed cluster.
//
// The deployment is self-discovering: OSDs report their listen address
// in every heartbeat, the MDS serves the resulting address map (plus
// the stripe geometry and block size) over wire.KResolveAddr, and both
// OSD peers and clients (tsue.Dial / ecfscli -mds) resolve node
// addresses through it. Only the MDS address needs to be configured
// anywhere.
//
// A 3-OSD toy cluster on one machine:
//
//	ecfsd -role mds -listen :7000 -k 2 -m 1 -osds 3 &
//	ecfsd -role osd -id 1 -listen :7001 -mds :7000 &
//	ecfsd -role osd -id 2 -listen :7002 -mds :7000 &
//	ecfsd -role osd -id 3 -listen :7003 -mds :7000 &
//	ecfscli -mds :7000 put file.bin
//
// A static -nodes map is still accepted as a seed (and for clusters
// predating address heartbeats).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/device"
	"repro/internal/ecfs"
	"repro/internal/erasure"
	"repro/internal/mdslog"
	"repro/internal/transport"
	"repro/internal/update"
	"repro/internal/wire"
)

func main() {
	var (
		role      = flag.String("role", "osd", "node role: mds | osd")
		id        = flag.Int("id", 1, "OSD node id (1..N); the MDS is node 0")
		listen    = flag.String("listen", ":7000", "listen address")
		advertise = flag.String("advertise", "", "address to report in heartbeats (defaults to the bound listen address)")
		mdsAddr   = flag.String("mds", "", "MDS address (OSD role); peer addresses are then resolved through the MDS address map")
		nodes     = flag.String("nodes", "", "static node address map seed: 0=host:port,1=host:port,...")
		method    = flag.String("method", "tsue", "update method: "+strings.Join(update.AllMethods, ", "))
		k         = flag.Int("k", 6, "data blocks per stripe")
		m         = flag.Int("m", 4, "parity blocks per stripe")
		osds      = flag.Int("osds", 16, "cluster OSD count (MDS role)")
		block     = flag.Int("block", 1<<20, "block size in bytes")
		hdd       = flag.Bool("hdd", false, "use the HDD device profile")
		dataDir   = flag.String("data-dir", "", "OSD role: durable data directory (WAL-backed block store + on-disk log segments); empty keeps the OSD in memory. Reopening an existing directory recovers its contents (see docs/OPERATIONS.md)")
		mdsDir    = flag.String("mds-data-dir", "", "MDS role: durable metadata directory (namespace op log + snapshot); empty keeps the namespace in memory. Reopening an existing directory replays it to the pre-crash namespace (see docs/OPERATIONS.md)")
		addrTTL   = flag.Duration("addr-ttl", 10*time.Second, "MDS role: drop address-map entries for nodes that have not heartbeaten this long (the liveness timeout; 0 disables aging)")
	)
	flag.Parse()

	switch *role {
	case "mds":
		ids := make([]wire.NodeID, *osds)
		for i := range ids {
			ids[i] = wire.NodeID(i + 1)
		}
		var mds *ecfs.MDS
		var err error
		if *mdsDir != "" {
			// Durable namespace: every mutation is logged before it is
			// acknowledged, so a crash of this process loses nothing a
			// client was told succeeded.
			mds, err = ecfs.OpenDurableMDS(*mdsDir, ids, *k, *m, ecfs.DefaultMDSShards, mdslog.Options{})
		} else {
			mds, err = ecfs.NewMDS(ids, *k, *m)
		}
		if err != nil {
			fatal(err)
		}
		// Served to dialing clients over wire.KResolveAddr, so the
		// whole cluster configuration lives in one place.
		mds.SetBlockSize(*block)
		// Age the address map with liveness: clients re-resolving a
		// node that stopped heartbeating get "unknown" instead of the
		// last address of a dead process (heartbeats fire every 2s).
		mds.SetAddrTTL(*addrTTL)
		srv, err := transport.ServeTCP(wire.MDSNode, *listen, mds.Handler)
		if err != nil {
			fatal(err)
		}
		self := *advertise
		if self == "" {
			self = srv.Addr()
		}
		mds.RecordAddr(wire.MDSNode, self)
		durable := ""
		if *mdsDir != "" {
			durable = ", namespace in " + *mdsDir
		}
		fmt.Printf("ecfsd: mds serving RS(%d,%d) x %d B blocks for %d OSDs on %s%s\n", *k, *m, *block, *osds, srv.Addr(), durable)
		waitSignal()
		srv.Close()
		// Clean shutdown: for a durable MDS, checkpoint the op log
		// (snapshot the namespace, sync, truncate) so the next start
		// loads the snapshot instead of replaying — the MDS mirror of
		// the OSD -data-dir shutdown below.
		if err := mds.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "ecfsd: mds close: %v\n", err)
		} else if *mdsDir != "" {
			fmt.Printf("ecfsd: mds checkpointed %s\n", *mdsDir)
		}
	case "osd":
		addrs, err := parseNodes(*nodes)
		if err != nil {
			fatal(err)
		}
		if *mdsAddr != "" {
			addrs[wire.MDSNode] = *mdsAddr
		}
		if _, ok := addrs[wire.MDSNode]; !ok {
			fatal(fmt.Errorf("OSD role needs the MDS address: pass -mds host:port (or a -nodes map containing node 0)"))
		}
		prof := device.ChameleonSSD()
		if *hdd {
			prof = device.Datacenter2TBHDD()
		}
		cfg := update.DefaultConfig()
		cfg.BlockSize = *block
		rpc := transport.NewTCPClient(addrs)
		defer rpc.Close()
		// Peer addresses resolve through the MDS address map, so a
		// static -nodes list is only ever a seed.
		rpc.SetResolver(func(ctx context.Context) (map[wire.NodeID]string, error) {
			r, err := rpc.Call(ctx, wire.MDSNode, &wire.Msg{Kind: wire.KResolveAddr})
			if err != nil {
				return nil, err
			}
			if err := r.Error(); err != nil {
				return nil, err
			}
			out, err := wire.DecodeAddrMap(r.Data)
			if err != nil {
				return nil, err
			}
			delete(out, wire.MDSNode) // the configured MDS address stays
			return out, nil
		})
		osd, err := ecfs.NewOSDAt(wire.NodeID(*id), prof, rpc, *method, cfg, erasure.Vandermonde, *dataDir)
		if err != nil {
			fatal(err)
		}
		defer osd.Close()
		srv, err := transport.ServeTCP(wire.NodeID(*id), *listen, osd.Handler)
		if err != nil {
			fatal(err)
		}
		self := *advertise
		if self == "" {
			self = srv.Addr()
		}
		osd.SetListenAddr(self)
		// Announce immediately so the address map knows this node before
		// the first periodic heartbeat fires.
		if err := osd.Heartbeat(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "ecfsd: initial heartbeat: %v (will keep retrying)\n", err)
		}
		stop := make(chan struct{})
		osd.StartHeartbeats(2*time.Second, stop)
		durable := ""
		if *dataDir != "" {
			durable = ", data in " + *dataDir
		}
		fmt.Printf("ecfsd: osd %d (%s, %s) serving on %s, advertising %s%s\n", *id, *method, prof.Kind, srv.Addr(), self, durable)
		waitSignal()
		close(stop)
		srv.Close()
		// Clean shutdown: stop the strategy workers and, for a durable
		// OSD, checkpoint the storage engine (flush dirty pages, sync,
		// truncate the WAL) so the next start recovers instantly instead
		// of replaying. Close is idempotent; the deferred call is a no-op.
		osd.Close()
		if *dataDir != "" {
			fmt.Printf("ecfsd: osd %d checkpointed %s\n", *id, *dataDir)
		}
	default:
		fatal(fmt.Errorf("unknown role %q", *role))
	}
}

func parseNodes(s string) (map[wire.NodeID]string, error) {
	out := make(map[wire.NodeID]string)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("ecfsd: bad -nodes entry %q", part)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, fmt.Errorf("ecfsd: bad node id %q", kv[0])
		}
		out[wire.NodeID(id)] = kv[1]
	}
	return out, nil
}

func waitSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	<-ch
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ecfsd: %v\n", err)
	os.Exit(1)
}
