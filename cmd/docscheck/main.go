// Command docscheck is the documentation lint behind `make docs-check`:
//
//  1. Markdown link check — every relative link in the repository's
//     *.md files must point at a file or directory that exists.
//  2. Godoc lint — every exported symbol of the repair subsystem
//     (internal/ecfs: repair.go, recovery.go, scheduler.go) must carry
//     a doc comment, so the operator-facing surface documented in
//     docs/OPERATIONS.md cannot silently grow undocumented knobs.
//
// It runs from the repository root (CI wires it into the verify job)
// and exits non-zero listing every violation.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// repairFiles is the godoc-linted surface: the repair/drain engines and
// the cluster-level scheduler.
var repairFiles = map[string]bool{
	"repair.go":    true,
	"recovery.go":  true,
	"scheduler.go": true,
}

func main() {
	problems := checkLinks(".")
	problems = append(problems, checkGodoc(filepath.Join("internal", "ecfs"))...)
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, "docscheck:", p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// mdLink matches [text](target) and [text](target "title") links;
// images ([!...]) match too via the closing-bracket-paren pair.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// checkLinks walks root for Markdown files and verifies every relative
// link target exists on disk. External schemes and pure anchors are
// skipped; a target's own #anchor suffix is ignored.
func checkLinks(root string) []string {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s: broken link %q", path, m[1]))
			}
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("link walk: %v", err))
	}
	return problems
}

// receiverExported reports whether a function is package API: a plain
// function, or a method whose receiver type is itself exported (an
// exported method on an unexported type — say a heap implementation —
// is not reachable documentation surface).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

// checkGodoc parses the given package directory and reports every
// exported symbol in the linted files that lacks a doc comment:
// functions and methods, types, and the individual specs of const/var
// blocks (a doc comment on the enclosing block covers its specs).
func checkGodoc(dir string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("godoc parse %s: %v", dir, err)}
	}
	var problems []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for path, file := range pkg.Files {
			if !repairFiles[filepath.Base(path)] {
				continue
			}
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil && receiverExported(d) {
						report(d.Pos(), "function", d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch sp := spec.(type) {
						case *ast.TypeSpec:
							if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil {
								report(sp.Pos(), "type", sp.Name.Name)
							}
						case *ast.ValueSpec:
							for _, name := range sp.Names {
								if name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
									report(sp.Pos(), "value", name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return problems
}
