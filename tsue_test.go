package tsue_test

import (
	"bytes"
	"strings"
	"testing"

	tsue "repro"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	opts := tsue.DefaultOptions()
	opts.BlockSize = 16 << 10
	cluster := tsue.MustNewCluster(opts)
	defer cluster.Close()

	cli := cluster.NewClient()
	ino, err := cli.Create("api-test")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, cli.StripeSpan())
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := cli.WriteFile(ino, data); err != nil {
		t.Fatal(err)
	}
	payload := []byte("public api update")
	if _, err := cli.Update(ino, 100, payload, 0); err != nil {
		t.Fatal(err)
	}
	copy(data[100:], payload)
	got, _, err := cli.Read(ino, 100, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read = %q", got)
	}
	if err := cluster.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cluster.VerifyStripes(ino, data); err != nil {
		t.Fatal(err)
	}
	if n, err := cluster.Scrub(); err != nil || n == 0 {
		t.Fatalf("scrub: %d, %v", n, err)
	}
}

func TestPublicTraces(t *testing.T) {
	if tr := tsue.AliCloudTrace(1<<24, 100, 1); len(tr.Ops) != 100 {
		t.Fatal("ali trace wrong")
	}
	if tr := tsue.TenCloudTrace(1<<24, 100, 1); len(tr.Ops) != 100 {
		t.Fatal("ten trace wrong")
	}
	if _, ok := tsue.MSRTrace("src10", 1<<24, 10, 1); !ok {
		t.Fatal("src10 should exist")
	}
	if _, ok := tsue.MSRTrace("bogus", 1<<24, 10, 1); ok {
		t.Fatal("bogus volume should not exist")
	}
	if len(tsue.MSRVolumes) != 7 {
		t.Fatal("want 7 MSR volumes")
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := tsue.RunExperiment("fig99", tsue.QuickScale()); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestRunExperimentExtension(t *testing.T) {
	s := tsue.QuickScale()
	s.Ops = 400
	s.FileSize = 2 << 20
	rep, err := tsue.RunExperiment("latency", s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "latency" || len(rep.Rows) != 6 {
		t.Fatalf("latency report wrong: %+v", rep)
	}
	if !strings.Contains(rep.String(), "tsue") {
		t.Fatal("report must include tsue row")
	}
}

func TestExperimentList(t *testing.T) {
	if len(tsue.Experiments) != 8 {
		t.Fatalf("experiments = %v", tsue.Experiments)
	}
	if len(tsue.Methods) != 6 || len(tsue.AllMethods) != 7 {
		t.Fatal("method lists wrong")
	}
	if tsue.PaperScale().Ops <= tsue.QuickScale().Ops {
		t.Fatal("paper scale should exceed quick scale")
	}
}
