package tsue_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	tsue "repro"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	opts := tsue.DefaultOptions()
	opts.BlockSize = 16 << 10
	cluster := tsue.MustNewCluster(opts)
	defer cluster.Close()

	cli := cluster.NewClient()
	ino, err := cli.Create("api-test")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, cli.StripeSpan())
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := cli.WriteFile(ino, data); err != nil {
		t.Fatal(err)
	}
	payload := []byte("public api update")
	if _, err := cli.Update(ino, 100, payload, 0); err != nil {
		t.Fatal(err)
	}
	copy(data[100:], payload)
	got, _, err := cli.Read(ino, 100, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read = %q", got)
	}
	if err := cluster.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := cluster.VerifyStripes(ino, data); err != nil {
		t.Fatal(err)
	}
	if n, err := cluster.Scrub(); err != nil || n == 0 {
		t.Fatalf("scrub: %d, %v", n, err)
	}
}

func TestPublicTraces(t *testing.T) {
	if tr := tsue.AliCloudTrace(1<<24, 100, 1); len(tr.Ops) != 100 {
		t.Fatal("ali trace wrong")
	}
	if tr := tsue.TenCloudTrace(1<<24, 100, 1); len(tr.Ops) != 100 {
		t.Fatal("ten trace wrong")
	}
	if _, ok := tsue.MSRTrace("src10", 1<<24, 10, 1); !ok {
		t.Fatal("src10 should exist")
	}
	if _, ok := tsue.MSRTrace("bogus", 1<<24, 10, 1); ok {
		t.Fatal("bogus volume should not exist")
	}
	if len(tsue.MSRVolumes) != 7 {
		t.Fatal("want 7 MSR volumes")
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	_, err := tsue.RunExperiment(context.Background(), "fig99", tsue.QuickScale())
	if err == nil {
		t.Fatal("unknown experiment must fail")
	}
	// The message is built from the live experiment tables, so it must
	// name the extension ids too — it can no longer drift.
	for _, id := range append(append([]string{}, tsue.Experiments...), tsue.ExtensionExperiments()...) {
		if !strings.Contains(err.Error(), id) {
			t.Fatalf("unknown-experiment message omits %q: %v", id, err)
		}
	}
}

func TestRunExperimentCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := tsue.QuickScale()
	s.Ops = 200
	s.FileSize = 1 << 20
	if _, err := tsue.RunExperiment(ctx, "fig5", s); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunExperiment = %v, want context.Canceled", err)
	}
}

// TestPublicHandleAPI drives the v2 surface through the re-exports: a
// *tsue.File from Cluster.CreateFile satisfies the io interfaces and
// round-trips writes, updates and reads.
func TestPublicHandleAPI(t *testing.T) {
	ctx := context.Background()
	opts := tsue.DefaultOptions()
	opts.BlockSize = 16 << 10
	cluster := tsue.MustNewCluster(opts)
	defer cluster.Close()

	f, err := cluster.CreateFile(ctx, "v2-api")
	if err != nil {
		t.Fatal(err)
	}
	var (
		_ io.ReaderAt = f
		_ io.WriterAt = f
		_ io.Closer   = f
	)
	data := make([]byte, opts.K*opts.BlockSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	payload := []byte("v2 public api update")
	if _, err := f.UpdateAt(ctx, 321, payload, 0); err != nil {
		t.Fatal(err)
	}
	copy(data[321:], payload)
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("public handle round trip mismatch")
	}
	if err := cluster.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := cluster.VerifyStripes(f.Ino(), data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestErrorTaxonomyReexports pins the errors.Is contract of the root
// package.
func TestErrorTaxonomyReexports(t *testing.T) {
	if tsue.ErrStaleEpoch == nil || tsue.ErrNotFound == nil || tsue.ErrNodeUnreachable == nil {
		t.Fatal("error taxonomy must be populated")
	}
	var dl *tsue.DataLossError
	_ = dl // the type re-export compiles; recovery tests exercise it
}

func TestRunExperimentExtension(t *testing.T) {
	s := tsue.QuickScale()
	s.Ops = 400
	s.FileSize = 2 << 20
	rep, err := tsue.RunExperiment(context.Background(), "latency", s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "latency" || len(rep.Rows) != 6 {
		t.Fatalf("latency report wrong: %+v", rep)
	}
	if !strings.Contains(rep.String(), "tsue") {
		t.Fatal("report must include tsue row")
	}
}

func TestExperimentList(t *testing.T) {
	if len(tsue.Experiments) != 8 {
		t.Fatalf("experiments = %v", tsue.Experiments)
	}
	if len(tsue.Methods) != 6 || len(tsue.AllMethods) != 7 {
		t.Fatal("method lists wrong")
	}
	if tsue.PaperScale().Ops <= tsue.QuickScale().Ops {
		t.Fatal("paper scale should exceed quick scale")
	}
}
