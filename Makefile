GO ?= go

# BENCH_ID names the combined trajectory file bench-json writes
# (BENCH_$(BENCH_ID).json); bump it per PR so trajectories accumulate.
BENCH_ID ?= pr6

.PHONY: verify verify-race build vet test race bench bench-json example-recovery docs-check scenario-smoke

# bench is part of verify as a smoke run (-benchtime 1x): benchmark code
# must keep compiling and running between trajectory snapshots.
verify: build vet test bench docs-check scenario-smoke

# verify-race runs the full suite under the race detector — the gate for
# changes touching MDS sharding, repair/drain, or client retry
# concurrency. CI (.github/workflows/ci.yml) runs both verify targets on
# every push and pull request.
verify-race: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run xxx ./...

# bench-json regenerates the benchmark trajectory snapshot checked in at
# the repo root: the repair and fig8b experiments plus the wire-codec /
# transport microbenchmarks, all in one combined JSON file.
bench-json:
	$(GO) run ./cmd/tsuebench -exp repair,fig8b,codec -combined BENCH_$(BENCH_ID).json

# docs-check lints the documentation: every relative Markdown link must
# resolve, and every exported repair/scheduler symbol must carry godoc
# (see cmd/docscheck). Part of make verify and the CI verify job.
docs-check:
	$(GO) run ./cmd/docscheck

# scenario-smoke runs a seeded two-tenant soak (OSD kill +
# drain-cancel-resume under the race detector, every phase checkpoint
# verifying parity, epochs, acknowledged writes, and the repair ledger).
# See docs/SCENARIOS.md. Part of make verify and the CI verify job.
scenario-smoke:
	$(GO) test -race -run 'TestScenarioSmoke' -count=1 ./internal/scenario/

example-recovery:
	$(GO) run ./examples/recovery
