GO ?= go

.PHONY: verify build vet test race bench example-recovery

verify: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run xxx ./...

example-recovery:
	$(GO) run ./examples/recovery
