GO ?= go

.PHONY: verify verify-race build vet test race bench example-recovery

verify: build vet test

# verify-race runs the full suite under the race detector — the gate for
# changes touching MDS sharding, repair/drain, or client retry
# concurrency. CI (.github/workflows/ci.yml) runs both verify targets on
# every push and pull request.
verify-race: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run xxx ./...

example-recovery:
	$(GO) run ./examples/recovery
