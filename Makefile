GO ?= go

.PHONY: verify verify-race build vet test race bench example-recovery docs-check

verify: build vet test docs-check

# verify-race runs the full suite under the race detector — the gate for
# changes touching MDS sharding, repair/drain, or client retry
# concurrency. CI (.github/workflows/ci.yml) runs both verify targets on
# every push and pull request.
verify-race: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run xxx ./...

# docs-check lints the documentation: every relative Markdown link must
# resolve, and every exported repair/scheduler symbol must carry godoc
# (see cmd/docscheck). Part of make verify and the CI verify job.
docs-check:
	$(GO) run ./cmd/docscheck

example-recovery:
	$(GO) run ./examples/recovery
