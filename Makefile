GO ?= go

# BENCH_ID names the combined trajectory file bench-json writes
# (BENCH_$(BENCH_ID).json); bump it per PR so trajectories accumulate.
# BENCH_BASE is the previous snapshot bench-diff gates against.
BENCH_ID ?= pr10
BENCH_BASE ?= pr9

.PHONY: verify verify-race build vet test race bench bench-json bench-diff bench-diff-ci example-recovery docs-check scenario-smoke

# bench is part of verify as a smoke run (-benchtime 1x): benchmark code
# must keep compiling and running between trajectory snapshots.
verify: build vet test bench docs-check scenario-smoke

# verify-race runs the full suite under the race detector — the gate for
# changes touching MDS sharding, repair/drain, or client retry
# concurrency. CI (.github/workflows/ci.yml) runs both verify targets on
# every push and pull request.
verify-race: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run xxx ./...

# bench-json regenerates the benchmark trajectory snapshot checked in at
# the repo root: the repair and fig8b experiments, the wire-codec /
# transport microbenchmarks, the storage engine, and the MDS scale table
# (with its durable op-log rows), all in one combined JSON file.
bench-json:
	$(GO) run ./cmd/tsuebench -exp repair,fig8b,codec,storage,mds-scale -combined BENCH_$(BENCH_ID).json

# bench-diff gates the committed trajectory: the current snapshot
# (BENCH_$(BENCH_ID).json, from make bench-json) must not regress beyond
# tight same-machine tolerance against the previous one. See
# cmd/benchdiff and docs/OPERATIONS.md for how to read the output.
bench-diff:
	$(GO) run ./cmd/benchdiff -base BENCH_$(BENCH_BASE).json -new BENCH_$(BENCH_ID).json

# bench-diff-ci is the CI flavor: regenerate the trajectory on whatever
# hardware the runner provides, then diff against the committed snapshot
# with wide smoke tolerances (time/rate bands absorb hardware deltas;
# B/op and allocs/op stay gated because they are machine-independent).
bench-diff-ci:
	$(GO) run ./cmd/tsuebench -exp repair,fig8b,codec,storage,mds-scale -combined BENCH_ci.json
	$(GO) run ./cmd/benchdiff -mode smoke -base BENCH_$(BENCH_ID).json -new BENCH_ci.json
	rm -f BENCH_ci.json

# docs-check lints the documentation: every relative Markdown link must
# resolve, and every exported repair/scheduler symbol must carry godoc
# (see cmd/docscheck). Part of make verify and the CI verify job.
docs-check:
	$(GO) run ./cmd/docscheck

# scenario-smoke runs a seeded two-tenant soak (OSD kill +
# drain-cancel-resume under the race detector, every phase checkpoint
# verifying parity, epochs, acknowledged writes, and the repair ledger).
# See docs/SCENARIOS.md. Part of make verify and the CI verify job.
scenario-smoke:
	$(GO) test -race -run 'TestScenarioSmoke' -count=1 ./internal/scenario/

example-recovery:
	$(GO) run ./examples/recovery
