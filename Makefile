GO ?= go

.PHONY: verify verify-race build vet test race bench example-recovery

verify: build vet test

# verify-race runs the full suite under the race detector — the gate for
# changes touching MDS sharding, recovery, or client retry concurrency.
# Caveat: benchmark *shape* tests couple to wall-clock recycler settling
# and can tie at tiny scales under the ~20x race slowdown (see README).
verify-race: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run xxx ./...

example-recovery:
	$(GO) run ./examples/recovery
