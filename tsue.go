// Package tsue is the public API of this TSUE reproduction: a two-stage
// data update method for an erasure-coded cluster file system (Wei et
// al., HPDC '25), together with the full ECFS substrate it runs in, the
// five baseline update methods the paper compares against, the synthetic
// cloud/MSR trace workloads, and the benchmark harness that regenerates
// every table and figure of the paper's evaluation.
//
// The v2 surface is context-aware and handle-based:
//
//	ctx := context.Background()
//	cluster := tsue.MustNewCluster(tsue.DefaultOptions())
//	defer cluster.Close()
//	f, _ := cluster.CreateFile(ctx, "volume0")
//	f.WriteAt(data, 0)                      // io.WriterAt: striped + encoded
//	f.UpdateAt(ctx, off, newBytes, 0)       // two-stage TSUE update
//	buf := make([]byte, n)
//	f.ReadAt(buf, off)                      // io.ReaderAt: read-your-writes
//	f.Close()
//
// A real TCP deployment of the same nodes (cmd/ecfsd) is reached with
// nothing but the metadata server's address — node addresses, stripe
// geometry and block size are self-discovered, and the connection pool
// re-resolves addresses when nodes move:
//
//	rc, _ := tsue.Dial(ctx, "10.0.0.1:7000")
//	defer rc.Close()
//	f, _ := rc.OpenFile(ctx, "volume0")
//
// Everything in-process is deterministic: devices and the network are
// priced by models (see internal/device, internal/netsim) while block
// contents, logs and parity are real and verified.
//
// Failure handling surfaces as an errors.Is-able taxonomy: ErrStaleEpoch
// (placement moved; retried internally), ErrNotFound (block never
// written), ErrNodeUnreachable (transport-level delivery failure), and
// *DataLossError (recovery could not reassemble a stripe).
package tsue

import (
	"context"
	"io"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/ecfs"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/update"
	"repro/internal/wire"
)

// Cluster is an assembled in-process ECFS deployment. Files are opened
// through Cluster.OpenFile/CreateFile, which return *File handles.
type Cluster = ecfs.Cluster

// Options configures a cluster.
type Options = ecfs.Options

// Client is the POSIX-facing access component. Its context-free
// Read/WriteFile/Update methods are deprecated wrappers; new code uses
// *File handles or the *Context methods.
type Client = ecfs.Client

// File is a handle on one ECFS file: io.ReaderAt, io.WriterAt,
// io.Closer, plus UpdateAt for two-stage TSUE updates.
type File = ecfs.File

// RemoteClient is a self-discovering client of a TCP-deployed cluster,
// obtained from Dial.
type RemoteClient = ecfs.RemoteClient

// DataLossError reports that recovery could not obtain K shards of a
// stripe from reachable holders. Returned (alongside the partial
// result) by Cluster.Recover; match with errors.As.
type DataLossError = ecfs.DataLossError

// Error taxonomy, usable with errors.Is across both transports.
var (
	// ErrStaleEpoch is a structured rejection of a request carrying an
	// outdated placement epoch. Clients re-resolve and retry these
	// internally; it surfaces only from raw wire access.
	ErrStaleEpoch = wire.ErrStaleEpoch
	// ErrNotFound reports a block that has never been written on the
	// serving node.
	ErrNotFound = wire.ErrNotFound
	// ErrNodeUnreachable wraps every transport-level delivery failure —
	// a failed node in-process, a refused dial or dead connection on
	// TCP.
	ErrNodeUnreachable = transport.ErrNodeUnreachable
	// ErrStrandedCutover reports a drain stripe rebound at the MDS whose
	// post-rebind fence/refetch failed; the drain hard-aborts (never
	// resumable) with the partial result alongside. See
	// docs/OPERATIONS.md's failure-mode table.
	ErrStrandedCutover = ecfs.ErrStrandedCutover
)

// StrategyConfig carries update-method tunables.
type StrategyConfig = update.Config

// Trace is a replayable block workload.
type Trace = trace.Trace

// Replayer drives traces against a cluster.
type Replayer = trace.Replayer

// Scale sizes a benchmark experiment.
type Scale = bench.Scale

// Report is a rendered experiment result.
type Report = bench.Report

// Methods lists the update methods of the paper's comparison, in order.
var Methods = update.Methods

// AllMethods additionally includes FL (§2.2 of the paper).
var AllMethods = update.AllMethods

// DefaultOptions mirrors the paper's SSD testbed: 16 OSDs, 25 Gb/s
// Ethernet, RS(6,4), TSUE.
func DefaultOptions() Options { return ecfs.DefaultOptions() }

// DefaultStrategyConfig returns the paper's TSUE configuration (16 MiB
// units, 4 units per pool, 4 pools per SSD, DeltaLog enabled).
func DefaultStrategyConfig() StrategyConfig { return update.DefaultConfig() }

// NewCluster builds and wires a cluster.
func NewCluster(opts Options) (*Cluster, error) { return ecfs.NewCluster(opts) }

// MustNewCluster panics on configuration errors.
func MustNewCluster(opts Options) *Cluster { return ecfs.MustNewCluster(opts) }

// Dial connects to a TCP-deployed ECFS cluster (cmd/ecfsd) knowing only
// the MDS address. Node addresses, stripe geometry and block size are
// discovered over wire.KResolveAddr (OSDs report their listen addresses
// in heartbeats), and the returned client's pool re-resolves addresses
// whenever a node is unreachable — fresh-id recovery and restarts on
// new ports need no manual address pushes.
func Dial(ctx context.Context, mdsAddr string) (*RemoteClient, error) {
	return ecfs.Dial(ctx, mdsAddr)
}

// NewReplayer builds a trace replayer with the given concurrent client
// population.
func NewReplayer(c *Cluster, clients int) *Replayer { return trace.NewReplayer(c, clients) }

// AliCloudTrace generates a synthetic trace matching the Ali-Cloud block
// trace statistics the paper cites (75% updates, 46% 4 KiB).
func AliCloudTrace(fileSize int64, ops int, seed int64) *Trace {
	return trace.AliCloud(fileSize, ops, seed)
}

// TenCloudTrace generates a synthetic trace matching the Tencent CBS
// statistics (69% updates, 69% 4 KiB, strong locality).
func TenCloudTrace(fileSize int64, ops int, seed int64) *Trace {
	return trace.TenCloud(fileSize, ops, seed)
}

// MSRTrace generates a synthetic MSR Cambridge volume trace; ok is false
// for unknown volume names (see MSRVolumes).
func MSRTrace(volume string, fileSize int64, ops int, seed int64) (*Trace, bool) {
	return trace.MSR(volume, fileSize, ops, seed)
}

// MSRVolumes lists the seven MSR volumes of the paper's Fig. 8.
var MSRVolumes = trace.MSRVolumes

// QuickScale sizes experiments for CI; PaperScale approaches the paper's
// workloads.
func QuickScale() Scale { return bench.Quick() }

// PaperScale returns the larger experiment scale.
func PaperScale() Scale { return bench.Paper() }

// Experiments lists the reproducible experiment ids in the paper's
// order: fig5, fig6a, fig6b, fig7, table1, table2, fig8a, fig8b.
var Experiments = bench.Order

// ExtensionExperiments lists the extension-experiment ids (beyond the
// paper's charts) in sorted order.
func ExtensionExperiments() []string {
	out := make([]string, 0, len(bench.Extensions))
	for id := range bench.Extensions {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// RunExperiment regenerates one of the paper's tables/figures, or one of
// the extension experiments (see ExtensionExperiments). A cancelled ctx
// aborts the run between — and, through the replayer, within — its
// cluster executions.
func RunExperiment(ctx context.Context, id string, s Scale) (*Report, error) {
	if fn, ok := bench.Experiments[id]; ok {
		return fn(ctx, s)
	}
	if fn, ok := bench.Extensions[id]; ok {
		return fn(ctx, s)
	}
	return nil, errUnknownExperiment(id)
}

// RunAll regenerates every table and figure, writing each report to w.
func RunAll(ctx context.Context, s Scale, w io.Writer) error {
	for _, id := range bench.Order {
		rep, err := RunExperiment(ctx, id, s)
		if err != nil {
			return err
		}
		rep.Fprint(w)
	}
	return nil
}

type errUnknownExperiment string

// Error lists every accepted id, built from the live experiment tables
// (bench.Order plus the Extensions keys) so the message cannot drift
// from what RunExperiment actually accepts.
func (e errUnknownExperiment) Error() string {
	ids := append(append([]string{}, bench.Order...), ExtensionExperiments()...)
	return "tsue: unknown experiment " + string(e) + " (want one of " + strings.Join(ids, ", ") + ")"
}
