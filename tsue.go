// Package tsue is the public API of this TSUE reproduction: a two-stage
// data update method for an erasure-coded cluster file system (Wei et
// al., HPDC '25), together with the full ECFS substrate it runs in, the
// five baseline update methods the paper compares against, the synthetic
// cloud/MSR trace workloads, and the benchmark harness that regenerates
// every table and figure of the paper's evaluation.
//
// Quick start:
//
//	cluster := tsue.MustNewCluster(tsue.DefaultOptions())
//	defer cluster.Close()
//	client := cluster.NewClient()
//	ino, _ := client.Create("volume0")
//	client.WriteFile(ino, data)             // striped + encoded
//	client.Update(ino, off, newBytes, 0)    // two-stage TSUE update
//	got, _, _ := client.Read(ino, off, n)   // read-your-writes
//
// Everything is deterministic and in-process: devices and the network
// are priced by models (see internal/device, internal/netsim) while
// block contents, logs and parity are real and verified. A real TCP
// deployment of the same nodes is available via cmd/ecfsd.
package tsue

import (
	"io"

	"repro/internal/bench"
	"repro/internal/ecfs"
	"repro/internal/trace"
	"repro/internal/update"
)

// Cluster is an assembled in-process ECFS deployment.
type Cluster = ecfs.Cluster

// Options configures a cluster.
type Options = ecfs.Options

// Client is the POSIX-facing access component.
type Client = ecfs.Client

// StrategyConfig carries update-method tunables.
type StrategyConfig = update.Config

// Trace is a replayable block workload.
type Trace = trace.Trace

// Replayer drives traces against a cluster.
type Replayer = trace.Replayer

// Scale sizes a benchmark experiment.
type Scale = bench.Scale

// Report is a rendered experiment result.
type Report = bench.Report

// Methods lists the update methods of the paper's comparison, in order.
var Methods = update.Methods

// AllMethods additionally includes FL (§2.2 of the paper).
var AllMethods = update.AllMethods

// DefaultOptions mirrors the paper's SSD testbed: 16 OSDs, 25 Gb/s
// Ethernet, RS(6,4), TSUE.
func DefaultOptions() Options { return ecfs.DefaultOptions() }

// DefaultStrategyConfig returns the paper's TSUE configuration (16 MiB
// units, 4 units per pool, 4 pools per SSD, DeltaLog enabled).
func DefaultStrategyConfig() StrategyConfig { return update.DefaultConfig() }

// NewCluster builds and wires a cluster.
func NewCluster(opts Options) (*Cluster, error) { return ecfs.NewCluster(opts) }

// MustNewCluster panics on configuration errors.
func MustNewCluster(opts Options) *Cluster { return ecfs.MustNewCluster(opts) }

// NewReplayer builds a trace replayer with the given concurrent client
// population.
func NewReplayer(c *Cluster, clients int) *Replayer { return trace.NewReplayer(c, clients) }

// AliCloudTrace generates a synthetic trace matching the Ali-Cloud block
// trace statistics the paper cites (75% updates, 46% 4 KiB).
func AliCloudTrace(fileSize int64, ops int, seed int64) *Trace {
	return trace.AliCloud(fileSize, ops, seed)
}

// TenCloudTrace generates a synthetic trace matching the Tencent CBS
// statistics (69% updates, 69% 4 KiB, strong locality).
func TenCloudTrace(fileSize int64, ops int, seed int64) *Trace {
	return trace.TenCloud(fileSize, ops, seed)
}

// MSRTrace generates a synthetic MSR Cambridge volume trace; ok is false
// for unknown volume names (see MSRVolumes).
func MSRTrace(volume string, fileSize int64, ops int, seed int64) (*Trace, bool) {
	return trace.MSR(volume, fileSize, ops, seed)
}

// MSRVolumes lists the seven MSR volumes of the paper's Fig. 8.
var MSRVolumes = trace.MSRVolumes

// QuickScale sizes experiments for CI; PaperScale approaches the paper's
// workloads.
func QuickScale() Scale { return bench.Quick() }

// PaperScale returns the larger experiment scale.
func PaperScale() Scale { return bench.Paper() }

// Experiments lists the reproducible experiment ids in the paper's
// order: fig5, fig6a, fig6b, fig7, table1, table2, fig8a, fig8b.
var Experiments = bench.Order

// RunExperiment regenerates one of the paper's tables/figures, or one of
// the extension experiments ("latency", "compression").
func RunExperiment(id string, s Scale) (*Report, error) {
	if fn, ok := bench.Experiments[id]; ok {
		return fn(s)
	}
	if fn, ok := bench.Extensions[id]; ok {
		return fn(s)
	}
	return nil, errUnknownExperiment(id)
}

// RunAll regenerates every table and figure, writing each report to w.
func RunAll(s Scale, w io.Writer) error {
	for _, id := range bench.Order {
		rep, err := RunExperiment(id, s)
		if err != nil {
			return err
		}
		rep.Fprint(w)
	}
	return nil
}

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "tsue: unknown experiment " + string(e) + " (want one of fig5, fig6a, fig6b, fig7, table1, table2, fig8a, fig8b)"
}
